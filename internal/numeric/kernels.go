package numeric

import "math"

// Format-specialized arithmetic kernels. Type.Quantize and Type.MACq pay a
// kind switch plus nested conversion calls on every invocation, which
// dominates the simulator's accumulation-chain replays (tens of ns per MAC
// against ~1 ns of arithmetic). QuantFunc and MACFunc return pre-built
// closures that evaluate the same rounding with the format dispatch hoisted
// out of the loop and the common case reduced to a handful of integer/float
// ops. The generic methods remain the reference semantics; every kernel is
// bit-identical to them for every input, enforced by the fuzz sweep in
// TestKernelsBitIdentical.

var (
	quantFns [numTypes]func(float64) float64
	macFns   [numTypes]func(acc, a, b float64) float64
	accFns   [numTypes]func(acc, p float64) float64
)

func init() {
	for _, t := range Types {
		quantFns[t] = buildQuantFn(t)
		macFns[t] = buildMACFn(t)
		accFns[t] = buildAccFn(t)
	}
}

// QuantFunc returns a specialized implementation of t.Quantize,
// bit-identical for every input including NaN, infinities and signed zero.
func (t Type) QuantFunc() func(float64) float64 { return quantFns[t] }

// MACFunc returns a specialized implementation of t.MACq (accumulate a
// pre-quantized operand product), bit-identical for every input.
func (t Type) MACFunc() func(acc, a, b float64) float64 { return macFns[t] }

// AccFunc returns a specialized accumulate-quantize step — Quantize(acc+p),
// the second half of MACq — for operands that are both grid values of the
// format (outputs of its quantizer, the accumulator invariant of every MAC
// chain). Bit-identical to Quantize(acc+p) under that precondition, pinned
// by TestKernelsBitIdentical. The restriction is what makes the fixed-point
// kernel collapse: the sum of two grid values is exactly representable, so
// the rounding step vanishes and only saturation remains.
func (t Type) AccFunc() func(acc, p float64) float64 { return accFns[t] }

func buildQuantFn(t Type) func(float64) float64 {
	switch t {
	case Double:
		return func(v float64) float64 { return v }
	case Float:
		return func(v float64) float64 { return float64(float32(v)) }
	case Float16:
		return f16Quantize
	default:
		return fxQuantFn(t)
	}
}

// Binary64 encoding constants of the binary16 normal range: a finite v
// rounds to a normal (or just-overflowing) half exactly when its unbiased
// exponent is in [-14, 15], i.e. its biased binary64 exponent is in
// [1009, 1038].
const (
	f16NormMin   = 1009 << 52 // 2^-14, the smallest normal half
	f16NormSpan  = 30 << 52   // exponent span of the normal range
	f16OverBits  = 1039 << 52 // biased exponent 1039 ⇒ rounded past 65504
	f16RoundHalf = 1<<41 - 1  // half-ulp minus one of the 42 dropped bits
)

// f16Quantize rounds v to the nearest binary16-representable value
// (round-to-nearest-even), bit-identical to F16ToFloat(F16FromFloat(v)).
// For the dominant case — a result in the half-precision normal range — the
// rounding happens directly on the binary64 bit pattern: adding
// half-ulp-minus-one plus the round bit's LSB rounds the 42 dropped mantissa
// bits to nearest-even, with a mantissa overflow carrying into the exponent
// exactly as the reference conversion does. Everything else (zeros,
// subnormals, overflow, Inf/NaN) defers to the reference round trip.
func f16Quantize(v float64) float64 {
	b := math.Float64bits(v)
	abs := b &^ (1 << 63)
	if abs-f16NormMin < f16NormSpan {
		abs += f16RoundHalf + ((abs >> 42) & 1)
		if abs >= f16OverBits { // rounded past the largest finite half
			return math.Float64frombits(b&(1<<63) | 0x7FF0000000000000)
		}
		return math.Float64frombits(b&(1<<63) | abs&^(1<<42-1))
	}
	return F16ToFloat(F16FromFloat(v))
}

// fxQuantFn builds the fused fixed-point quantizer of format t: the same
// value fxDecode(fxEncode(t, v)) takes, without materializing the raw
// integer. Rounding to integer uses the 2^52 magic-add (exact
// round-to-nearest-even for |s| < 2^52; larger magnitudes stay far beyond
// the saturation bound, so the clamps still fire). The rounded value r is
// integral with |r| < 2^(w-1) ≤ 2^31, so int64(r) == r exactly, and
// multiplying by the exact power of two 2^-f equals fxDecode's division
// bit-for-bit. The r == 0 guard folds -0 to +0 exactly as the integer round
// trip does.
const two52 = 1 << 52

func fxQuantFn(t Type) func(float64) float64 {
	w, f := t.Width(), t.FractionBits()
	maxRaw := float64(int64(1)<<(w-1) - 1)
	minRaw := float64(-(int64(1) << (w - 1)))
	scale := float64(int64(1) << f)
	inv := 1 / scale
	satMax := maxRaw * inv
	satMin := minRaw * inv
	return func(v float64) float64 {
		if v != v { // NaN encodes as raw 0
			return 0
		}
		s := v * scale
		// Branchless round-to-nearest-even: round |s| via the 2^52 magic
		// add (exact for |s| < 2^52; larger magnitudes saturate below
		// regardless of the off-by-a-few rounding), then restore the sign —
		// RoundToEven is odd-symmetric.
		r := math.Copysign(math.Abs(s)+two52-two52, s)
		if r >= maxRaw {
			return satMax
		}
		if r <= minRaw {
			return satMin
		}
		if r == 0 {
			return 0
		}
		return r * inv
	}
}

func buildMACFn(t Type) func(acc, a, b float64) float64 {
	switch t {
	case Double:
		// Both quantizations are the identity; mul-then-add matches MACq's
		// operation order (gc does not fuse into an FMA on amd64, and the
		// kernel fuzz test pins the equality on any build platform).
		return func(acc, a, b float64) float64 {
			p := a * b
			return acc + p
		}
	case Float:
		return func(acc, a, b float64) float64 {
			p := float64(float32(a * b))
			return float64(float32(acc + p))
		}
	case Float16:
		return func(acc, a, b float64) float64 {
			return f16Quantize(acc + f16Quantize(a*b))
		}
	default:
		return fxMACFn(t)
	}
}

func buildAccFn(t Type) func(acc, p float64) float64 {
	switch t {
	case Double:
		return func(acc, p float64) float64 { return acc + p }
	case Float:
		return func(acc, p float64) float64 { return float64(float32(acc + p)) }
	case Float16:
		return func(acc, p float64) float64 { return f16Quantize(acc + p) }
	default:
		return fxAccFn(t)
	}
}

// fxAccFn is the fixed-point accumulate-quantize kernel for grid operands.
// Grid values are finite multiples of 2^-f with |v*scale| ≤ 2^(w-1) ≤ 2^31,
// so acc+p is exact in binary64 (the sum needs at most w+1 ≤ 33 significant
// bits), v*scale is an exact integer, and Quantize's round-to-nearest-even
// is the identity — only the saturation clamps can fire. The quantizer
// never emits -0 (its raw-zero guard folds it to +0), so the sum of two
// grid values cannot be -0 and the zero guard is unnecessary too. At the
// clamp boundaries the generic path returns the same value: r == maxRaw
// yields satMax == v exactly.
func fxAccFn(t Type) func(acc, p float64) float64 {
	w, f := t.Width(), t.FractionBits()
	maxRaw := float64(int64(1)<<(w-1) - 1)
	minRaw := float64(-(int64(1) << (w - 1)))
	scale := float64(int64(1) << f)
	inv := 1 / scale
	satMax := maxRaw * inv
	satMin := minRaw * inv
	return func(acc, p float64) float64 {
		v := acc + p
		s := v * scale
		if s >= maxRaw {
			return satMax
		}
		if s <= minRaw {
			return satMin
		}
		return v
	}
}

// fxMACFn is the fixed-point MACq kernel with both quantization steps of
// fxQuantFn's body inlined — the indirect closure call per rounding costs
// as much as the rounding itself in the chain-replay hot loop.
func fxMACFn(t Type) func(acc, a, b float64) float64 {
	w, f := t.Width(), t.FractionBits()
	maxRaw := float64(int64(1)<<(w-1) - 1)
	minRaw := float64(-(int64(1) << (w - 1)))
	scale := float64(int64(1) << f)
	inv := 1 / scale
	satMax := maxRaw * inv
	satMin := minRaw * inv
	return func(acc, a, b float64) float64 {
		p := a * b
		var pq float64
		if p != p {
			pq = 0
		} else {
			r := math.Copysign(math.Abs(p*scale)+two52-two52, p)
			switch {
			case r >= maxRaw:
				pq = satMax
			case r <= minRaw:
				pq = satMin
			case r == 0:
				pq = 0
			default:
				pq = r * inv
			}
		}
		v := acc + pq
		if v != v {
			return 0
		}
		r := math.Copysign(math.Abs(v*scale)+two52-two52, v)
		switch {
		case r >= maxRaw:
			return satMax
		case r <= minRaw:
			return satMin
		case r == 0:
			return 0
		}
		return r * inv
	}
}
