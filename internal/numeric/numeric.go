// Package numeric implements the six accelerator datapath number formats
// studied in the paper (Table 3): IEEE-754 binary64, binary32 and binary16
// floating point, and three 2's-complement fixed-point formats with
// saturating arithmetic. Every format exposes a bit-exact stored
// representation so single-event upsets can be modelled as a flip of one
// stored bit.
package numeric

import "fmt"

// Type identifies one of the datapath number formats from Table 3 of the
// paper.
type Type int

const (
	// Double is IEEE-754 binary64: 1 sign, 11 exponent, 52 mantissa bits.
	Double Type = iota
	// Float is IEEE-754 binary32: 1 sign, 8 exponent, 23 mantissa bits.
	Float
	// Float16 is IEEE-754 binary16: 1 sign, 5 exponent, 10 mantissa bits.
	Float16
	// Fx32RB26 is 32-bit fixed point "32b_rb26": 1 sign, 5 integer,
	// 26 fraction bits.
	Fx32RB26
	// Fx32RB10 is 32-bit fixed point "32b_rb10": 1 sign, 21 integer,
	// 10 fraction bits.
	Fx32RB10
	// Fx16RB10 is 16-bit fixed point "16b_rb10": 1 sign, 5 integer,
	// 10 fraction bits.
	Fx16RB10

	numTypes
)

// Types lists every supported format in Table 3 order.
var Types = []Type{Double, Float, Float16, Fx32RB26, Fx32RB10, Fx16RB10}

// BitClass labels the architectural role of a bit position within a format.
type BitClass int

const (
	// SignBit is the sign bit of either format family.
	SignBit BitClass = iota
	// ExponentBit is an exponent bit of a floating-point format.
	ExponentBit
	// MantissaBit is a mantissa (FP) bit.
	MantissaBit
	// IntegerBit is an integer-part bit of a fixed-point format.
	IntegerBit
	// FractionBit is a fraction-part bit of a fixed-point format.
	FractionBit
)

// String names the bit class.
func (c BitClass) String() string {
	switch c {
	case SignBit:
		return "sign"
	case ExponentBit:
		return "exponent"
	case MantissaBit:
		return "mantissa"
	case IntegerBit:
		return "integer"
	case FractionBit:
		return "fraction"
	}
	return fmt.Sprintf("numeric.BitClass(%d)", int(c))
}

// String returns the paper's name for the format.
func (t Type) String() string {
	switch t {
	case Double:
		return "DOUBLE"
	case Float:
		return "FLOAT"
	case Float16:
		return "FLOAT16"
	case Fx32RB26:
		return "32b_rb26"
	case Fx32RB10:
		return "32b_rb10"
	case Fx16RB10:
		return "16b_rb10"
	}
	return fmt.Sprintf("numeric.Type(%d)", int(t))
}

// ParseType maps a paper-style format name to its Type.
func ParseType(s string) (Type, error) {
	for _, t := range Types {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("numeric: unknown data type %q", s)
}

// IsFloat reports whether the format belongs to the floating-point family.
func (t Type) IsFloat() bool {
	return t == Double || t == Float || t == Float16
}

// Width returns the stored width of the format in bits.
func (t Type) Width() int {
	switch t {
	case Double:
		return 64
	case Float, Fx32RB26, Fx32RB10:
		return 32
	case Float16, Fx16RB10:
		return 16
	}
	panic("numeric: invalid type")
}

// FractionBits returns the number of fraction bits of a fixed-point format
// (the position of the radix point). It panics for floating-point formats.
func (t Type) FractionBits() int {
	switch t {
	case Fx32RB26:
		return 26
	case Fx32RB10:
		return 10
	case Fx16RB10:
		return 10
	}
	panic("numeric: FractionBits on floating-point type " + t.String())
}

// Classify labels bit position bit (0 = least significant) of the format.
func (t Type) Classify(bit int) BitClass {
	w := t.Width()
	if bit < 0 || bit >= w {
		panic(fmt.Sprintf("numeric: bit %d out of range for %s", bit, t))
	}
	if bit == w-1 {
		return SignBit
	}
	switch t {
	case Double:
		if bit >= 52 {
			return ExponentBit
		}
		return MantissaBit
	case Float:
		if bit >= 23 {
			return ExponentBit
		}
		return MantissaBit
	case Float16:
		if bit >= 10 {
			return ExponentBit
		}
		return MantissaBit
	default:
		if bit >= t.FractionBits() {
			return IntegerBit
		}
		return FractionBit
	}
}

// MaxValue returns the largest representable magnitude of the format.
func (t Type) MaxValue() float64 {
	switch t {
	case Double:
		return maxFloat64
	case Float:
		return maxFloat32
	case Float16:
		return maxFloat16
	default:
		w, f := t.Width(), t.FractionBits()
		maxRaw := int64(1)<<(w-1) - 1
		return float64(maxRaw) / float64(int64(1)<<f)
	}
}

// MinValue returns the most negative representable value of the format.
func (t Type) MinValue() float64 {
	switch t {
	case Double:
		return -maxFloat64
	case Float:
		return -maxFloat32
	case Float16:
		return -maxFloat16
	default:
		w, f := t.Width(), t.FractionBits()
		minRaw := -(int64(1) << (w - 1))
		return float64(minRaw) / float64(int64(1)<<f)
	}
}

// Quantize rounds v to the nearest representable value of the format,
// saturating at the format's dynamic range as the paper's fixed-point
// hardware does. Simulated datapath results pass through Quantize after
// every arithmetic operation so the software model matches the accelerator
// word width.
func (t Type) Quantize(v float64) float64 {
	switch t {
	case Double:
		return v
	case Float:
		return float64(float32(v))
	case Float16:
		return F16ToFloat(F16FromFloat(v))
	default:
		return fxDecode(t, fxEncode(t, v))
	}
}

// Encode returns the stored bit pattern of v in the format, right-aligned
// in a uint64. v is quantized first.
func (t Type) Encode(v float64) uint64 {
	switch t {
	case Double:
		return f64bits(v)
	case Float:
		return uint64(f32bits(float32(v)))
	case Float16:
		return uint64(F16FromFloat(v))
	default:
		return fxBits(t, fxEncode(t, v))
	}
}

// Decode interprets a stored bit pattern of the format as a value.
func (t Type) Decode(bits uint64) float64 {
	switch t {
	case Double:
		return f64frombits(bits)
	case Float:
		return float64(f32frombits(uint32(bits)))
	case Float16:
		return F16ToFloat(uint16(bits))
	default:
		return fxDecode(t, fxFromBits(t, bits))
	}
}

// FlipBit returns the value whose stored representation equals that of v
// with bit position bit (0 = LSB) inverted — the paper's single-event-upset
// model for a latch or buffer cell holding v.
func (t Type) FlipBit(v float64, bit int) float64 {
	if bit < 0 || bit >= t.Width() {
		panic(fmt.Sprintf("numeric: flip bit %d out of range for %s", bit, t))
	}
	return t.Decode(t.Encode(v) ^ (1 << uint(bit)))
}

// FlipBits returns the value whose stored representation equals that of v
// with width adjacent bits starting at position bit (0 = LSB) inverted —
// the multi-bit-upset generalization of FlipBit. width <= 1 degenerates to
// a single-event upset.
func (t Type) FlipBits(v float64, bit, width int) float64 {
	if width <= 1 {
		return t.FlipBit(v, bit)
	}
	if bit < 0 || bit+width > t.Width() {
		panic(fmt.Sprintf("numeric: flip span [%d,%d) out of range for %s", bit, bit+width, t))
	}
	mask := (uint64(1)<<uint(width) - 1) << uint(bit)
	return t.Decode(t.Encode(v) ^ mask)
}
