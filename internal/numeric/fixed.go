package numeric

import "math"

// Fixed-point arithmetic helpers. A fixed-point value is stored as a w-bit
// 2's-complement integer holding round(v * 2^f) where f is the number of
// fraction bits. Values outside the representable range saturate to the
// maximum/minimum raw value, as the paper specifies for its FxP formats.

// fxEncode converts v to the saturated raw integer of format t.
func fxEncode(t Type, v float64) int64 {
	w, f := t.Width(), t.FractionBits()
	maxRaw := int64(1)<<(w-1) - 1
	minRaw := -(int64(1) << (w - 1))
	if math.IsNaN(v) {
		return 0
	}
	scaled := v * float64(int64(1)<<f)
	// RoundToEven matches typical DSP/accumulator rounding hardware and
	// keeps Quantize idempotent.
	r := math.RoundToEven(scaled)
	if r >= float64(maxRaw) {
		return maxRaw
	}
	if r <= float64(minRaw) {
		return minRaw
	}
	return int64(r)
}

// fxDecode converts a raw integer of format t back to a float64.
func fxDecode(t Type, raw int64) float64 {
	return float64(raw) / float64(int64(1)<<t.FractionBits())
}

// fxBits exposes the 2's-complement stored pattern, right-aligned.
func fxBits(t Type, raw int64) uint64 {
	w := t.Width()
	return uint64(raw) & (^uint64(0) >> (64 - uint(w)))
}

// fxFromBits sign-extends a w-bit stored pattern back to a raw integer.
func fxFromBits(t Type, bits uint64) int64 {
	w := uint(t.Width())
	bits &= ^uint64(0) >> (64 - w)
	if bits&(1<<(w-1)) != 0 { // negative: sign-extend
		bits |= ^uint64(0) << w
	}
	return int64(bits)
}

// Add returns a+b computed in format t with saturation, modelling the PE
// adder at the datapath width.
func (t Type) Add(a, b float64) float64 { return t.Quantize(t.Quantize(a) + t.Quantize(b)) }

// Mul returns a*b computed in format t with saturation, modelling the PE
// multiplier at the datapath width.
func (t Type) Mul(a, b float64) float64 { return t.Quantize(t.Quantize(a) * t.Quantize(b)) }

// MAC returns acc + a*b in format t — the fundamental accelerator
// operation (Fig. 1b). The product is formed at the datapath width and the
// accumulation saturates like the PSum path.
func (t Type) MAC(acc, a, b float64) float64 { return t.Add(acc, t.Mul(a, b)) }

// MACq is MAC for operands already representable in t (pre-quantized
// weights and activations): it skips the redundant operand quantization.
// Because Quantize is idempotent, MACq(acc, Q(a), Q(b)) == MAC(acc, a, b)
// bit-exactly; layers pre-quantize reused operands once and call MACq in
// their inner loops.
func (t Type) MACq(acc, a, b float64) float64 {
	return t.Quantize(acc + t.Quantize(a*b))
}
