package numeric

import "math"

// IEEE-754 binary16 (half precision) implemented from scratch on top of
// binary64, since the accelerator formats must be bit-exact for fault
// injection. Conversions use round-to-nearest-even, matching hardware FP
// units.

const maxFloat16 = 65504 // (2 - 2^-10) * 2^15

var (
	maxFloat64 = math.MaxFloat64
	maxFloat32 = float64(math.MaxFloat32)
)

func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }
func f32bits(v float32) uint32     { return math.Float32bits(v) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }

// F16FromFloat converts v to the nearest binary16 bit pattern
// (round-to-nearest-even), with overflow going to infinity as IEEE-754
// prescribes.
func F16FromFloat(v float64) uint16 {
	b := math.Float64bits(v)
	sign := uint16(b>>48) & 0x8000
	exp := int((b >> 52) & 0x7ff)
	frac := b & 0xfffffffffffff

	if exp == 0x7ff { // Inf or NaN
		if frac != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7c00 // Inf
	}

	// Unbiased exponent; binary64 bias 1023, binary16 bias 15.
	e := exp - 1023 + 15
	switch {
	case e >= 0x1f:
		// Overflow to infinity.
		return sign | 0x7c00
	case e >= 1:
		// Normal number: keep top 10 fraction bits, round to nearest even.
		mant := uint32(frac >> 42) // 10 bits
		round := frac & 0x3ffffffffff
		half := uint64(0x20000000000)
		if round > half || (round == half && mant&1 == 1) {
			mant++
			if mant == 0x400 { // mantissa overflow carries into exponent
				mant = 0
				e++
				if e >= 0x1f {
					return sign | 0x7c00
				}
			}
		}
		return sign | uint16(e)<<10 | uint16(mant)
	case e >= -10:
		// Subnormal half: shift in the implicit leading 1.
		full := frac | 1<<52
		shift := uint(42 + 1 - e) // bits dropped from the 53-bit significand
		mant := uint32(full >> shift)
		rem := full & ((1 << shift) - 1)
		half := uint64(1) << (shift - 1)
		if rem > half || (rem == half && mant&1 == 1) {
			mant++
			// A carry out of the subnormal range lands exactly on the
			// smallest normal, which the encoding below already represents.
		}
		return sign | uint16(mant)
	default:
		// Underflow to signed zero.
		return sign
	}
}

// F16ToFloat expands a binary16 bit pattern to binary64 exactly (every
// half-precision value is representable in double precision).
func F16ToFloat(h uint16) float64 {
	sign := uint64(h&0x8000) << 48
	exp := int(h>>10) & 0x1f
	frac := uint64(h & 0x3ff)

	switch exp {
	case 0:
		if frac == 0 {
			return math.Float64frombits(sign) // signed zero
		}
		// Subnormal: value = frac * 2^-24.
		v := float64(frac) * 0x1p-24
		if sign != 0 {
			v = -v
		}
		return v
	case 0x1f:
		if frac != 0 {
			return math.NaN()
		}
		if sign != 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	default:
		e := uint64(exp - 15 + 1023)
		return math.Float64frombits(sign | e<<52 | frac<<42)
	}
}
