package numeric

import (
	"math"
	"math/rand"
	"testing"
)

// kernelInputs yields a stream of adversarial float64 values: every binary16
// value and its neighbors, fixed-point grid points and rounding midpoints,
// saturation boundaries, signed zeros, infinities, NaN, subnormals, and a
// broad random sweep across the exponent range.
func kernelInputs(t Type) []float64 {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
		maxFloat16, -maxFloat16, maxFloat32, -maxFloat32,
		t.MaxValue(), t.MinValue(), t.MaxValue() * 2, t.MinValue() * 2,
	}
	if !t.IsFloat() {
		f := t.FractionBits()
		ulp := 1 / float64(int64(1)<<f)
		for _, g := range []float64{0, 1, -1, t.MaxValue(), t.MinValue()} {
			vals = append(vals, g, g+ulp/2, g-ulp/2, g+ulp/4, g+3*ulp/4, g+ulp, g-ulp)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 20000; i++ { // random grid points and exact tie midpoints
			g := float64(rng.Int63n(int64(1)<<t.Width())-int64(1)<<(t.Width()-1)) * ulp
			vals = append(vals, g, g+ulp/2, g-ulp/2)
		}
	}
	for h := 0; h < 1<<16; h++ { // the whole half-precision grid, with
		v := F16ToFloat(uint16(h)) // neighbors and exact tie midpoints
		up := math.Nextafter(v, math.Inf(1))
		vals = append(vals, v, up, math.Nextafter(v, math.Inf(-1)))
		if next := F16ToFloat(uint16(h + 1)); !math.IsInf(v, 0) && !math.IsInf(next, 0) &&
			v == v && next == next && (h>>10)&0x1f != 0x1f {
			vals = append(vals, v+(next-v)/2)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		// Random sign/exponent/mantissa rather than Float64() so the sweep
		// covers subnormal, huge, and non-finite regions too.
		vals = append(vals, math.Float64frombits(rng.Uint64()))
		vals = append(vals, (rng.Float64()*2-1)*math.Ldexp(1, rng.Intn(40)-20))
	}
	return vals
}

// TestChainReplayBitIdentical is the contract of replay.go: for every
// format, replaying a chain against cached golden internals — from any
// subset of changed taps, including saturating and re-converging lanes —
// must reproduce the full MACq replay of the lane's chain bit-for-bit.
func TestChainReplayBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dt := range Types {
		for trial := 0; trial < 3000; trial++ {
			chain := 1 + rng.Intn(24)
			qw := make([]float64, chain)
			gx := make([]float64, chain)
			lx := make([]float64, chain)
			scale := math.Ldexp(1, rng.Intn(30)-15) * dt.MaxValue()
			for j := range qw {
				qw[j] = dt.Quantize((rng.Float64()*2 - 1) * scale)
				gx[j] = dt.Quantize((rng.Float64()*2 - 1) * scale)
				lx[j] = gx[j]
			}
			var steps []int
			var xs []float64
			for j := range lx {
				if rng.Intn(4) == 0 {
					lx[j] = dt.Quantize((rng.Float64()*2 - 1) * scale)
					steps = append(steps, j)
					xs = append(xs, lx[j])
				}
			}
			// Golden internals and the scalar reference replay.
			prefix := make([]float64, chain+1)
			prods := make([]float64, chain)
			acc := dt.Quantize((rng.Float64()*2 - 1) * scale)
			prefix[0] = acc
			for j := 0; j < chain; j++ {
				prods[j] = dt.Quantize(qw[j] * gx[j])
				acc = dt.MACq(acc, qw[j], gx[j])
				prefix[j+1] = acc
			}
			want := prefix[0]
			for j := 0; j < chain; j++ {
				want = dt.MACq(want, qw[j], lx[j])
			}
			got := dt.ChainReplay(prefix, prods, qw, 0, steps, xs, chain)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s ChainReplay trial %d (chain %d, %d changed) = %x, scalar replay = %x",
					dt, trial, chain, len(steps), math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestKernelsBitIdentical is the contract of kernels.go: for every format,
// QuantFunc matches Quantize and MACFunc matches MACq bit-for-bit on an
// adversarial input sweep.
func TestKernelsBitIdentical(t *testing.T) {
	eq := func(a, b float64) bool {
		return math.Float64bits(a) == math.Float64bits(b) || (a != a && b != b)
	}
	for _, dt := range Types {
		vals := kernelInputs(dt)
		q, mac, accf := dt.QuantFunc(), dt.MACFunc(), dt.AccFunc()
		for _, v := range vals {
			if got, want := q(v), dt.Quantize(v); !eq(got, want) {
				t.Fatalf("%s QuantFunc(%x) = %x, Quantize = %x",
					dt, math.Float64bits(v), math.Float64bits(got), math.Float64bits(want))
			}
		}
		// MAC operands must be representable (the MACq precondition);
		// accumulators range over raw sweep values.
		var ops []float64
		for i := 0; i < len(vals); i += 3 {
			ops = append(ops, dt.Quantize(vals[i]))
		}
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40000; i++ {
			acc := vals[rng.Intn(len(vals))]
			a := ops[rng.Intn(len(ops))]
			b := ops[rng.Intn(len(ops))]
			if got, want := mac(acc, a, b), dt.MACq(acc, a, b); !eq(got, want) {
				t.Fatalf("%s MACFunc(%x, %x, %x) = %x, MACq = %x", dt,
					math.Float64bits(acc), math.Float64bits(a), math.Float64bits(b),
					math.Float64bits(got), math.Float64bits(want))
			}
			// The decomposed MAC used by cached chain replays: for a grid
			// accumulator (AccFunc's precondition), product quantize then
			// accumulate quantize must compose to MACq.
			qacc := dt.Quantize(acc)
			if got, want := accf(qacc, q(a*b)), dt.MACq(qacc, a, b); !eq(got, want) {
				t.Fatalf("%s AccFunc(%x, QuantFunc(%x*%x)) = %x, MACq = %x", dt,
					math.Float64bits(qacc), math.Float64bits(a), math.Float64bits(b),
					math.Float64bits(got), math.Float64bits(want))
			}
			if got, want := accf(qacc, b), dt.Quantize(qacc+b); !eq(got, want) {
				t.Fatalf("%s AccFunc(%x, %x) = %x, Quantize(sum) = %x", dt,
					math.Float64bits(qacc), math.Float64bits(b),
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}
