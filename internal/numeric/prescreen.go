package numeric

import "math"

// Bit-parallel fault kernels. A datapath fault campaign evaluates every bit
// position of one latch site; the per-site work shared by all bits (the
// clean prefix and suffix of the accumulation chain) vastly exceeds the
// per-bit work (one perturbed step). These kernels compute the per-bit
// perturbed step products for all Width() bit positions at once, using the
// exact same call sequences the scalar per-bit fault path uses, so the
// bit-plane evaluator downstream is bit-identical to Width() scalar replays.

// Operand identifies which operand of a MAC step a bit-parallel flip
// perturbs. It mirrors the weight/input/product latch targets of
// layers.Target without importing the layers package.
type Operand int

const (
	// OpWeight flips a bit of the quantized weight operand.
	OpWeight Operand = iota
	// OpInput flips a bit of the quantized activation operand.
	OpInput
	// OpProduct flips a bit of the multiplier output.
	OpProduct
)

// FlipProducts fills out[b], for every bit position b of the format, with
// the product term the faulted MAC step adds to the accumulator when bit b
// of the chosen operand latch is flipped:
//
//	OpWeight:  Mul(FlipBit(Q(w), b), Q(x))
//	OpInput:   Mul(Q(w), FlipBit(Q(x), b))
//	OpProduct: FlipBit(Mul(w, x), b)
//
// computed with the operand encoding hoisted out of the per-bit loop.
// Each out[b] is bit-identical to what the scalar fault path (macFaulty)
// adds at the faulted step, so callers can both pre-screen (a flipped
// product bit-identical to the clean product Mul(w, x) proves the whole
// faulty chain bit-identical to golden) and seed lane accumulators.
// Entries beyond Width() are left untouched.
func (t Type) FlipProducts(op Operand, w, x float64, out *[64]float64) {
	width := t.Width()
	switch op {
	case OpWeight:
		qw, qx := t.Quantize(w), t.Quantize(x)
		e := t.Encode(qw)
		for b := 0; b < width; b++ {
			out[b] = t.Mul(t.Decode(e^(1<<uint(b))), qx)
		}
	case OpInput:
		qw, qx := t.Quantize(w), t.Quantize(x)
		e := t.Encode(qx)
		for b := 0; b < width; b++ {
			out[b] = t.Mul(qw, t.Decode(e^(1<<uint(b))))
		}
	case OpProduct:
		p := t.Mul(w, x)
		e := t.Encode(p)
		for b := 0; b < width; b++ {
			out[b] = t.Decode(e ^ (1 << uint(b)))
		}
	default:
		panic("numeric: unknown flip operand")
	}
}

// FxFlipMagnitude returns |FlipBit(v, bit) − v| for a fixed-point format —
// exactly 2^(bit−FractionBits), independent of v: flipping stored bit `bit`
// changes the two's-complement raw integer by ±2^bit (the sign bit included,
// whose weight is −2^(w−1)), and FlipBit decodes the stored pattern without
// re-saturating. It panics for floating-point formats, whose flip magnitude
// is value-dependent.
//
// The analytical ReLU pre-screen uses it to bound a faulty fixed-point
// chain's drift from golden: fixed-point Add is exact-then-saturate, and
// saturation is monotone and 1-Lipschitz, so the final chain output moves by
// at most the faulted step's perturbation magnitude.
func (t Type) FxFlipMagnitude(bit int) float64 {
	if bit < 0 || bit >= t.Width() {
		panic("numeric: flip magnitude bit out of range")
	}
	return math.Ldexp(1, bit-t.FractionBits())
}
