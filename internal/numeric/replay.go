package numeric

import "math"

// ChainReplay recomputes one quantized accumulation chain whose operands
// differ from a cached golden replay of the same chain at exactly the
// ascending tap positions `steps`. The golden internals are prefix (the
// partial accumulator before each tap, prefix[chain] being the final value)
// and prods (each tap's quantized product); qw[wBase+j] is the quantized
// weight of tap j and xs[i] the lane's quantized input at steps[i].
//
// Each MAC decomposes into product-quantize and accumulate-quantize —
// bit-identical to MACq (pinned by TestChainReplayBitIdentical) — so cached
// golden products substitute for unchanged taps, the replay starts at the
// partial before the first changed tap, and a bit-equal partial accumulator
// proves the remaining unchanged taps reproduce the golden partials
// (identical operations on identical values), allowing an early out or a
// skip to the next changed tap. The loop bodies are specialized per format:
// the indirect kernel call costs as much as the arithmetic it wraps.
func (t Type) ChainReplay(prefix, prods, qw []float64, wBase int, steps []int, xs []float64, chain int) float64 {
	switch t {
	case Double:
		return replayDouble(prefix, prods, qw, wBase, steps, xs, chain)
	case Float:
		return replayFloat(prefix, prods, qw, wBase, steps, xs, chain)
	case Float16:
		return replayF16(prefix, prods, qw, wBase, steps, xs, chain)
	default:
		return replayFx(t, prefix, prods, qw, wBase, steps, xs, chain)
	}
}

// replayDouble: both quantizations are the identity. Re-convergence is
// still possible (a sub-ulp delta can round away), but detecting it costs
// more than the plain adds it would save, and skipping the check is
// bit-identical — the replay simply recomputes what the early out would
// have read from prefix. The float64 conversions are explicit roundings,
// which keeps implementations from fusing the multiply-add into an FMA.
func replayDouble(prefix, prods, qw []float64, wBase int, steps []int, xs []float64, chain int) float64 {
	prefix, prods = prefix[:chain+1], prods[:chain]
	if len(steps) == 0 {
		return prefix[chain]
	}
	j := steps[0]
	acc := prefix[j]
	si := 0
	for ; j < chain; j++ {
		if si < len(steps) && steps[si] == j {
			acc += float64(qw[wBase+j] * xs[si])
			si++
		} else {
			acc += prods[j]
		}
	}
	return acc
}

func replayFloat(prefix, prods, qw []float64, wBase int, steps []int, xs []float64, chain int) float64 {
	prefix, prods = prefix[:chain+1], prods[:chain]
	si := 0
	for {
		if si == len(steps) {
			return prefix[chain]
		}
		j := steps[si]
		acc := prefix[j]
		for {
			var p float64
			if si < len(steps) && steps[si] == j {
				p = float64(float32(qw[wBase+j] * xs[si]))
				si++
			} else {
				p = prods[j]
			}
			acc = float64(float32(acc + p))
			j++
			if j == chain {
				return acc
			}
			if (si == len(steps) || steps[si] != j) &&
				math.Float64bits(acc) == math.Float64bits(prefix[j]) {
				break // re-converged: skip ahead to the next changed tap
			}
		}
	}
}

func replayF16(prefix, prods, qw []float64, wBase int, steps []int, xs []float64, chain int) float64 {
	prefix, prods = prefix[:chain+1], prods[:chain]
	si := 0
	for {
		if si == len(steps) {
			return prefix[chain]
		}
		j := steps[si]
		acc := prefix[j]
		for {
			var p float64
			if si < len(steps) && steps[si] == j {
				p = f16Quantize(qw[wBase+j] * xs[si])
				si++
			} else {
				p = prods[j]
			}
			acc = f16Quantize(acc + p)
			j++
			if j == chain {
				return acc
			}
			if (si == len(steps) || steps[si] != j) &&
				math.Float64bits(acc) == math.Float64bits(prefix[j]) {
				break
			}
		}
	}
}

// replayFx inlines the grid-operand accumulate of fxAccFn (see its
// derivation: the sum of two grid values is exact, so only saturation can
// fire); changed-tap products still pay the full rounding through the
// format's quantizer, but they are the rare case.
func replayFx(t Type, prefix, prods, qw []float64, wBase int, steps []int, xs []float64, chain int) float64 {
	prefix, prods = prefix[:chain+1], prods[:chain]
	w, f := t.Width(), t.FractionBits()
	maxRaw := float64(int64(1)<<(w-1) - 1)
	minRaw := float64(-(int64(1) << (w - 1)))
	scale := float64(int64(1) << f)
	inv := 1 / scale
	satMax := maxRaw * inv
	satMin := minRaw * inv
	quant := quantFns[t]
	si := 0
	for {
		if si == len(steps) {
			return prefix[chain]
		}
		j := steps[si]
		acc := prefix[j]
		for {
			var p float64
			if si < len(steps) && steps[si] == j {
				p = quant(qw[wBase+j] * xs[si])
				si++
			} else {
				p = prods[j]
			}
			v := acc + p
			s := v * scale
			if s >= maxRaw {
				v = satMax
			} else if s <= minRaw {
				v = satMin
			}
			acc = v
			j++
			if j == chain {
				return acc
			}
			if (si == len(steps) || steps[si] != j) &&
				math.Float64bits(acc) == math.Float64bits(prefix[j]) {
				break
			}
		}
	}
}
