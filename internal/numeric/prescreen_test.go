package numeric

import (
	"math"
	"math/rand"
	"testing"
)

// TestFlipProductsMatchesScalarFlips pins the bit-parallel flip kernel
// against the scalar operand/product flip semantics of the fault model:
// for every format, operand and bit, FlipProducts[b] must equal the product
// macFaulty would compute after FlipBit on that operand (or on the
// product).
func TestFlipProductsMatchesScalarFlips(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, dt := range Types {
		for trial := 0; trial < 200; trial++ {
			w := rng.NormFloat64() * math.Ldexp(1, rng.Intn(8)-4)
			x := rng.NormFloat64() * math.Ldexp(1, rng.Intn(8)-4)
			switch trial % 5 {
			case 3:
				x = 0
			case 4:
				w = 0
			}
			var got [64]float64
			for _, tc := range []struct {
				op   Operand
				want func(bit int) float64
			}{
				{OpWeight, func(bit int) float64 {
					return dt.Mul(dt.FlipBit(dt.Quantize(w), bit), dt.Quantize(x))
				}},
				{OpInput, func(bit int) float64 {
					return dt.Mul(dt.Quantize(w), dt.FlipBit(dt.Quantize(x), bit))
				}},
				{OpProduct, func(bit int) float64 {
					return dt.FlipBit(dt.Mul(w, x), bit)
				}},
			} {
				dt.FlipProducts(tc.op, w, x, &got)
				for b := 0; b < dt.Width(); b++ {
					want := tc.want(b)
					if math.Float64bits(got[b]) != math.Float64bits(want) {
						t.Fatalf("%s op=%d w=%v x=%v bit=%d: got %v (%x), want %v (%x)",
							dt, tc.op, w, x, b, got[b], math.Float64bits(got[b]), want, math.Float64bits(want))
					}
				}
			}
		}
	}
}

// TestFxFlipMagnitude pins the analytical accumulator-flip bound: for the
// fixed-point formats, |FlipBit(v, bit) − v| is exactly 2^(bit−FractionBits)
// for every in-range value and bit — including the sign bit — which is what
// makes the ReLU sign-domain pre-screen sound.
func TestFxFlipMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, dt := range Types {
		if dt.IsFloat() {
			continue
		}
		for b := 0; b < dt.Width(); b++ {
			want := math.Ldexp(1, b-dt.FractionBits())
			if got := dt.FxFlipMagnitude(b); got != want {
				t.Fatalf("%s bit %d: magnitude %v, want %v", dt, b, got, want)
			}
			for trial := 0; trial < 50; trial++ {
				v := dt.Quantize(rng.NormFloat64() * math.Ldexp(1, rng.Intn(6)-3))
				flipped := dt.FlipBit(v, b)
				if got := math.Abs(flipped - v); got != want {
					t.Fatalf("%s bit %d v=%v: |flip−v| = %v, want %v", dt, b, v, got, want)
				}
			}
		}
	}
}

// TestFlipProductsPanics documents the kernel's input contract.
func TestFlipProductsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FlipProducts with an unknown operand did not panic")
		}
	}()
	var out [64]float64
	Float16.FlipProducts(Operand(99), 1, 1, &out)
}

// TestFxFlipMagnitudeRange documents the bit-range contract.
func TestFxFlipMagnitudeRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FxFlipMagnitude out of range did not panic")
		}
	}()
	Fx16RB10.FxFlipMagnitude(16)
}
