package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	want := map[Type]string{
		Double:   "DOUBLE",
		Float:    "FLOAT",
		Float16:  "FLOAT16",
		Fx32RB26: "32b_rb26",
		Fx32RB10: "32b_rb10",
		Fx16RB10: "16b_rb10",
	}
	for ty, s := range want {
		if got := ty.String(); got != s {
			t.Errorf("%v.String() = %q, want %q", int(ty), got, s)
		}
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, ty := range Types {
		got, err := ParseType(ty.String())
		if err != nil {
			t.Fatalf("ParseType(%q): %v", ty.String(), err)
		}
		if got != ty {
			t.Errorf("ParseType(%q) = %v, want %v", ty.String(), got, ty)
		}
	}
	if _, err := ParseType("bogus"); err == nil {
		t.Error("ParseType(bogus) succeeded, want error")
	}
}

func TestWidths(t *testing.T) {
	want := map[Type]int{
		Double: 64, Float: 32, Float16: 16,
		Fx32RB26: 32, Fx32RB10: 32, Fx16RB10: 16,
	}
	for ty, w := range want {
		if got := ty.Width(); got != w {
			t.Errorf("%s.Width() = %d, want %d", ty, got, w)
		}
	}
}

func TestClassifyTable3(t *testing.T) {
	// Spot-check the Table 3 field layout for every format.
	cases := []struct {
		ty   Type
		bit  int
		want BitClass
	}{
		{Double, 63, SignBit}, {Double, 62, ExponentBit}, {Double, 52, ExponentBit}, {Double, 51, MantissaBit}, {Double, 0, MantissaBit},
		{Float, 31, SignBit}, {Float, 30, ExponentBit}, {Float, 23, ExponentBit}, {Float, 22, MantissaBit},
		{Float16, 15, SignBit}, {Float16, 14, ExponentBit}, {Float16, 10, ExponentBit}, {Float16, 9, MantissaBit},
		{Fx32RB26, 31, SignBit}, {Fx32RB26, 30, IntegerBit}, {Fx32RB26, 26, IntegerBit}, {Fx32RB26, 25, FractionBit},
		{Fx32RB10, 31, SignBit}, {Fx32RB10, 30, IntegerBit}, {Fx32RB10, 10, IntegerBit}, {Fx32RB10, 9, FractionBit},
		{Fx16RB10, 15, SignBit}, {Fx16RB10, 14, IntegerBit}, {Fx16RB10, 10, IntegerBit}, {Fx16RB10, 9, FractionBit}, {Fx16RB10, 0, FractionBit},
	}
	for _, c := range cases {
		if got := c.ty.Classify(c.bit); got != c.want {
			t.Errorf("%s.Classify(%d) = %v, want %v", c.ty, c.bit, got, c.want)
		}
	}
}

func TestClassifyFieldCounts(t *testing.T) {
	// Table 3: sign/exponent/mantissa (or sign/integer/fraction) widths.
	counts := func(ty Type) map[BitClass]int {
		m := map[BitClass]int{}
		for b := 0; b < ty.Width(); b++ {
			m[ty.Classify(b)]++
		}
		return m
	}
	if m := counts(Double); m[SignBit] != 1 || m[ExponentBit] != 11 || m[MantissaBit] != 52 {
		t.Errorf("DOUBLE field counts = %v", m)
	}
	if m := counts(Float); m[SignBit] != 1 || m[ExponentBit] != 8 || m[MantissaBit] != 23 {
		t.Errorf("FLOAT field counts = %v", m)
	}
	if m := counts(Float16); m[SignBit] != 1 || m[ExponentBit] != 5 || m[MantissaBit] != 10 {
		t.Errorf("FLOAT16 field counts = %v", m)
	}
	if m := counts(Fx32RB26); m[SignBit] != 1 || m[IntegerBit] != 5 || m[FractionBit] != 26 {
		t.Errorf("32b_rb26 field counts = %v", m)
	}
	if m := counts(Fx32RB10); m[SignBit] != 1 || m[IntegerBit] != 21 || m[FractionBit] != 10 {
		t.Errorf("32b_rb10 field counts = %v", m)
	}
	if m := counts(Fx16RB10); m[SignBit] != 1 || m[IntegerBit] != 5 || m[FractionBit] != 10 {
		t.Errorf("16b_rb10 field counts = %v", m)
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ty := range Types {
		for i := 0; i < 1000; i++ {
			v := (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(8)-4))
			q := ty.Quantize(v)
			if qq := ty.Quantize(q); qq != q {
				t.Fatalf("%s: Quantize not idempotent: %v -> %v -> %v", ty, v, q, qq)
			}
		}
	}
}

func TestQuantizeSaturates(t *testing.T) {
	for _, ty := range []Type{Fx32RB26, Fx32RB10, Fx16RB10} {
		if got := ty.Quantize(1e30); got != ty.MaxValue() {
			t.Errorf("%s.Quantize(1e30) = %v, want max %v", ty, got, ty.MaxValue())
		}
		if got := ty.Quantize(-1e30); got != ty.MinValue() {
			t.Errorf("%s.Quantize(-1e30) = %v, want min %v", ty, got, ty.MinValue())
		}
	}
}

func TestFixedPointRanges(t *testing.T) {
	// 32b_rb26: 5 integer bits -> max just under 32; 32b_rb10: 21 integer
	// bits -> max just under 2^21; 16b_rb10: 5 integer bits -> just under 32.
	if max := Fx32RB26.MaxValue(); max <= 31 || max >= 32 {
		t.Errorf("32b_rb26 max = %v, want in (31,32)", max)
	}
	if max := Fx32RB10.MaxValue(); max <= (1<<21)-2 || max >= 1<<21 {
		t.Errorf("32b_rb10 max = %v, want just under 2^21", max)
	}
	if max := Fx16RB10.MaxValue(); max <= 31 || max >= 32 {
		t.Errorf("16b_rb10 max = %v, want in (31,32)", max)
	}
	if min := Fx16RB10.MinValue(); min != -32 {
		t.Errorf("16b_rb10 min = %v, want -32", min)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, ty := range Types {
		for i := 0; i < 2000; i++ {
			v := ty.Quantize((rng.Float64() - 0.5) * 50)
			got := ty.Decode(ty.Encode(v))
			if got != v {
				t.Fatalf("%s: Decode(Encode(%v)) = %v", ty, v, got)
			}
		}
	}
}

func TestDecodeEncodeBitsRoundTrip(t *testing.T) {
	// For every format, any w-bit pattern decodes to a value that encodes
	// back to the same pattern (excluding FP NaN payloads and FxP patterns
	// are always exact).
	rng := rand.New(rand.NewSource(3))
	for _, ty := range Types {
		mask := ^uint64(0) >> (64 - uint(ty.Width()))
		for i := 0; i < 2000; i++ {
			bits := rng.Uint64() & mask
			v := ty.Decode(bits)
			if math.IsNaN(v) {
				continue // NaN payloads canonicalize; value equality is meaningless
			}
			if got := ty.Encode(v); got != bits {
				t.Fatalf("%s: Encode(Decode(%#x)) = %#x", ty, bits, got)
			}
		}
	}
}

func TestFlipBitInvolution(t *testing.T) {
	// Flipping the same bit twice restores the original value for any
	// representable non-NaN value.
	rng := rand.New(rand.NewSource(4))
	for _, ty := range Types {
		for i := 0; i < 500; i++ {
			v := ty.Quantize((rng.Float64() - 0.5) * 100)
			bit := rng.Intn(ty.Width())
			f1 := ty.FlipBit(v, bit)
			if math.IsNaN(f1) {
				continue
			}
			if f2 := ty.FlipBit(f1, bit); f2 != v {
				t.Fatalf("%s: flip bit %d twice: %v -> %v -> %v", ty, bit, v, f1, f2)
			}
		}
	}
}

func TestFlipBitChangesValue(t *testing.T) {
	for _, ty := range Types {
		v := ty.Quantize(1.5)
		for bit := 0; bit < ty.Width(); bit++ {
			if f := ty.FlipBit(v, bit); f == v {
				t.Errorf("%s: FlipBit(%v, %d) did not change the value", ty, v, bit)
			}
		}
	}
}

func TestFlipSignBit(t *testing.T) {
	for _, ty := range Types {
		v := ty.Quantize(2.5)
		got := ty.FlipBit(v, ty.Width()-1)
		var want float64
		if ty.IsFloat() {
			want = -v
		} else {
			// 2's complement: flipping the sign bit subtracts 2^(w-1-f).
			w, f := ty.Width(), ty.FractionBits()
			want = v - math.Pow(2, float64(w-1-f))
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: sign-bit flip of %v = %v, want %v", ty, v, got, want)
		}
	}
}

func TestHighExponentFlipIsLargeDeviation(t *testing.T) {
	// The paper's core observation: a 0->1 flip in a high exponent bit of a
	// near-zero FP value produces a huge magnitude.
	v := 0.5
	got := Float.FlipBit(v, 30) // highest exponent bit of binary32
	if math.Abs(got) < 1e30 {
		t.Errorf("FLOAT flip bit30 of 0.5 = %v, want astronomically large", got)
	}
	got16 := Float16.FlipBit(0.5, 14)
	if math.Abs(got16) < 1e4 {
		t.Errorf("FLOAT16 flip bit14 of 0.5 = %v, want >= 1e4", got16)
	}
	// And the FLOAT16 deviation is far smaller than the FLOAT one —
	// why per-bit SDC probability is lower for FLOAT16 (§5.1.2).
	if math.Abs(got16) >= math.Abs(got) {
		t.Errorf("FLOAT16 deviation %v should be below FLOAT deviation %v", got16, got)
	}
}

func TestFxPIntegerFlipMagnitudes(t *testing.T) {
	// Integer-bit flips in 32b_rb10 reach ~2^20 while 32b_rb26 caps at ~2^4:
	// the dynamic-range asymmetry behind Figure 4c/4d.
	v := 0.25
	d10 := math.Abs(Fx32RB10.FlipBit(v, 30) - v)
	d26 := math.Abs(Fx32RB26.FlipBit(v, 30) - v)
	if d10 < 1e5 {
		t.Errorf("32b_rb10 bit30 deviation = %v, want >= 1e5", d10)
	}
	if d26 > 32 {
		t.Errorf("32b_rb26 bit30 deviation = %v, want <= 32", d26)
	}
	if d26 >= d10 {
		t.Errorf("32b_rb26 deviation %v should be far below 32b_rb10 %v", d26, d10)
	}
}

func TestAddMulSaturate(t *testing.T) {
	ty := Fx16RB10
	max := ty.MaxValue()
	if got := ty.Add(max, max); got != max {
		t.Errorf("16b_rb10 Add(max,max) = %v, want %v", got, max)
	}
	if got := ty.Mul(max, max); got != max {
		t.Errorf("16b_rb10 Mul(max,max) = %v, want %v", got, max)
	}
	min := ty.MinValue()
	if got := ty.Add(min, min); got != min {
		t.Errorf("16b_rb10 Add(min,min) = %v, want %v", got, min)
	}
}

func TestMACMatchesAddMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, ty := range Types {
		for i := 0; i < 200; i++ {
			a, b, acc := rng.Float64()*4-2, rng.Float64()*4-2, rng.Float64()*8-4
			if got, want := ty.MAC(acc, a, b), ty.Add(acc, ty.Mul(a, b)); got != want {
				t.Fatalf("%s: MAC(%v,%v,%v) = %v, want %v", ty, acc, a, b, got, want)
			}
		}
	}
}

func TestQuantizePropertyWithinHalfULP(t *testing.T) {
	// Property: for in-range values, fixed-point quantization error is at
	// most half an LSB.
	prop := func(x float64) bool {
		v := math.Mod(x, 30) // keep in range for the 5-integer-bit formats
		if math.IsNaN(v) {
			return true
		}
		for _, ty := range []Type{Fx32RB26, Fx32RB10, Fx16RB10} {
			lsb := 1.0 / float64(int64(1)<<ty.FractionBits())
			if math.Abs(ty.Quantize(v)-v) > lsb/2+1e-15 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloat16PropertyRoundTripExact(t *testing.T) {
	// Property: every finite binary16 pattern survives a decode/encode
	// round trip exactly.
	prop := func(h uint16) bool {
		v := F16ToFloat(h)
		if math.IsNaN(v) {
			return true
		}
		return F16FromFloat(v) == h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestFloat16Exhaustive(t *testing.T) {
	// binary16 has only 65536 patterns; verify all finite ones round-trip
	// and compare against the float32 path for consistency.
	for i := 0; i <= 0xffff; i++ {
		h := uint16(i)
		v := F16ToFloat(h)
		if math.IsNaN(v) {
			if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
				t.Fatalf("pattern %#04x decoded to NaN but is not a NaN encoding", h)
			}
			continue
		}
		if got := F16FromFloat(v); got != h {
			t.Fatalf("pattern %#04x -> %v -> %#04x", h, v, got)
		}
	}
}

func TestFloat16KnownValues(t *testing.T) {
	cases := []struct {
		v    float64
		bits uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},   // max normal
		{0x1p-24, 0x0001}, // smallest subnormal
		{0x1p-14, 0x0400}, // smallest normal
		{math.Inf(1), 0x7c00},
		{math.Inf(-1), 0xfc00},
	}
	for _, c := range cases {
		if got := F16FromFloat(c.v); got != c.bits {
			t.Errorf("F16FromFloat(%v) = %#04x, want %#04x", c.v, got, c.bits)
		}
		if !math.IsInf(c.v, 0) {
			if got := F16ToFloat(c.bits); got != c.v {
				t.Errorf("F16ToFloat(%#04x) = %v, want %v", c.bits, got, c.v)
			}
		}
	}
}

func TestFloat16Rounding(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1 and 1+2^-10: round to even (1).
	if got := F16ToFloat(F16FromFloat(1 + 0x1p-11)); got != 1 {
		t.Errorf("half-way rounding of 1+2^-11 = %v, want 1 (round to even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: round to even (1+2^-9).
	if got := F16ToFloat(F16FromFloat(1 + 3*0x1p-11)); got != 1+0x1p-9 {
		t.Errorf("half-way rounding of 1+3*2^-11 = %v, want %v", got, 1+0x1p-9)
	}
	// Overflow rounds to +Inf.
	if got := F16ToFloat(F16FromFloat(65520)); !math.IsInf(got, 1) {
		t.Errorf("F16(65520) = %v, want +Inf", got)
	}
	// Just below the overflow threshold stays at max.
	if got := F16ToFloat(F16FromFloat(65519)); got != 65504 {
		t.Errorf("F16(65519) = %v, want 65504", got)
	}
}

func TestFloat16NaN(t *testing.T) {
	if got := F16FromFloat(math.NaN()); got&0x7c00 != 0x7c00 || got&0x3ff == 0 {
		t.Errorf("F16FromFloat(NaN) = %#04x, not a NaN pattern", got)
	}
	if !math.IsNaN(F16ToFloat(0x7e00)) {
		t.Error("F16ToFloat(0x7e00) should be NaN")
	}
}

func TestFixedNaNEncodesToZero(t *testing.T) {
	for _, ty := range []Type{Fx32RB26, Fx32RB10, Fx16RB10} {
		if got := ty.Quantize(math.NaN()); got != 0 {
			t.Errorf("%s.Quantize(NaN) = %v, want 0", ty, got)
		}
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FlipBit out of range did not panic")
		}
	}()
	Float16.FlipBit(1, 16)
}

func TestClassifyPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Classify out of range did not panic")
		}
	}()
	Float.Classify(32)
}

func TestFractionBitsPanicsOnFloat(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FractionBits on FP type did not panic")
		}
	}()
	Double.FractionBits()
}
