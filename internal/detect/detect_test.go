package detect

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

func detNet() *network.Network {
	conv := layers.NewConv("conv1", 1, 3, 3, 1, 1)
	for i := range conv.Weights {
		conv.Weights[i] = 0.2 * float64(i%5-2)
	}
	fc := layers.NewFC("fc2", 3*3*3, 5)
	for i := range fc.Weights {
		fc.Weights[i] = 0.1 * float64(i%7-3)
	}
	n := &network.Network{
		Name:    "det",
		InShape: tensor.Shape{C: 1, H: 6, W: 6},
		Classes: 5,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			layers.NewPool("pool1", 2, 2),
			fc,
			layers.NewSoftmax("prob"),
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func detInputs(start, n int) []*tensor.Tensor {
	ins := make([]*tensor.Tensor, n)
	for i := range ins {
		img := dataset.Image(dataset.CIFARLike, 6, start+i)
		one := tensor.New(tensor.Shape{C: 1, H: 6, W: 6})
		copy(one.Data, img.Data[:36])
		ins[i] = one
	}
	return ins
}

func TestLearnProducesBoundsPerBlock(t *testing.T) {
	n := detNet()
	d := Learn(n, numeric.Float16, detInputs(0, 5), DefaultCushion)
	if len(d.Bounds) != n.NumBlocks() {
		t.Fatalf("bounds = %d, want %d blocks", len(d.Bounds), n.NumBlocks())
	}
	for i, r := range d.Bounds {
		if r.Min > r.Max {
			t.Errorf("block %d bounds inverted: %+v", i, r)
		}
	}
}

func TestCushionWidensBounds(t *testing.T) {
	n := detNet()
	tight := Learn(n, numeric.Float16, detInputs(0, 3), 0)
	wide := Learn(n, numeric.Float16, detInputs(0, 3), DefaultCushion)
	for i := range tight.Bounds {
		if wide.Bounds[i].Max < tight.Bounds[i].Max {
			t.Errorf("block %d: cushion shrank max", i)
		}
		if wide.Bounds[i].Min > tight.Bounds[i].Min {
			t.Errorf("block %d: cushion raised min", i)
		}
	}
	// The cushion is exactly 10% of the magnitude.
	r0 := tight.Bounds[0]
	w0 := wide.Bounds[0]
	if r0.Max > 0 && w0.Max != r0.Max*1.1 {
		t.Errorf("cushioned max = %v, want %v", w0.Max, r0.Max*1.1)
	}
}

func TestTrainingRunsPassDetection(t *testing.T) {
	// The detector must not flag the very executions it learned from.
	n := detNet()
	ins := detInputs(0, 5)
	d := Learn(n, numeric.Float16, ins, DefaultCushion)
	for i, in := range ins {
		if d.Check(n, n.Forward(numeric.Float16, in)) {
			t.Errorf("training input %d flagged", i)
		}
	}
}

func TestFalseAlarmRateLowOnHeldOut(t *testing.T) {
	n := detNet()
	d := Learn(n, numeric.Float16, detInputs(0, 10), DefaultCushion)
	rate := d.FalseAlarmRate(n, detInputs(100, 10))
	if rate > 0.3 {
		t.Errorf("false alarm rate on held-out inputs = %v, want <= 0.3", rate)
	}
}

func TestDetectsLargeDeviation(t *testing.T) {
	// An execution with an out-of-range activation must be flagged.
	n := detNet()
	ins := detInputs(0, 3)
	d := Learn(n, numeric.Float16, ins, DefaultCushion)
	golden := n.Forward(numeric.Float16, ins[0])
	// Corrupt the conv output hugely and rerun the tail.
	act := golden.Acts[0].Clone()
	act.Data[0] = d.Bounds[0].Max * 1000
	faulty := n.ForwardWithAct(numeric.Float16, golden, 0, act)
	if !d.Check(n, faulty) {
		t.Error("large out-of-range deviation not detected")
	}
}

func TestCheckBlock(t *testing.T) {
	n := detNet()
	d := Learn(n, numeric.Float16, detInputs(0, 3), DefaultCushion)
	ok := tensor.NewVector(4)
	ok.Fill((d.Bounds[0].Min + d.Bounds[0].Max) / 2)
	if d.CheckBlock(0, ok) {
		t.Error("in-range block flagged")
	}
	bad := tensor.NewVector(4)
	bad.Fill(d.Bounds[0].Max*1.5 + 1)
	if !d.CheckBlock(0, bad) {
		t.Error("out-of-range block not flagged")
	}
}

func TestCheckFlagsNaN(t *testing.T) {
	n := detNet()
	d := Learn(n, numeric.Float16, detInputs(0, 3), DefaultCushion)
	bad := tensor.NewVector(4)
	bad.Data[2] = nan()
	if !d.CheckBlock(0, bad) {
		t.Error("NaN activation not flagged")
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestLearnPanicsWithoutInputs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Learn without inputs did not panic")
		}
	}()
	Learn(detNet(), numeric.Float16, nil, DefaultCushion)
}

func TestCheckPanicsOnBlockMismatch(t *testing.T) {
	n := detNet()
	d := Learn(n, numeric.Float16, detInputs(0, 2), DefaultCushion)
	d.Bounds = d.Bounds[:1]
	defer func() {
		if recover() == nil {
			t.Error("Check with mismatched bounds did not panic")
		}
	}()
	d.Check(n, n.Forward(numeric.Float16, detInputs(0, 1)[0]))
}

func TestLearnUsesAllInputs(t *testing.T) {
	// Learning from more inputs can only widen the uncushioned bounds.
	n := detNet()
	one := Learn(n, numeric.Float16, detInputs(0, 1), 0)
	many := Learn(n, numeric.Float16, detInputs(0, 8), 0)
	for b := range one.Bounds {
		if many.Bounds[b].Max < one.Bounds[b].Max-1e-12 {
			t.Errorf("block %d: more inputs shrank max", b)
		}
		if many.Bounds[b].Min > one.Bounds[b].Min+1e-12 {
			t.Errorf("block %d: more inputs raised min", b)
		}
	}
}
