// Package detect implements the paper's Symptom-based Error Detector
// (SED, §6.2). The detector exploits the §5.1.3 observation that
// SDC-causing faults drive activations far outside the narrow per-layer
// value ranges of the fault-free network, while benign faults rarely do.
//
// Learning phase (offline, once): run the instrumented network on
// representative inputs and record the min/max activation value of each
// layer, then widen each bound by a 10% cushion.
//
// Deployment phase: at the end of each layer — when the layer's ofmap sits
// in the global buffer as the next layer's input — the host checks the
// values against the learned bounds, asynchronously with the accelerator's
// execution of the next layer.
package detect

import (
	"fmt"

	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// DefaultCushion is the paper's 10% widening of the learned ranges.
const DefaultCushion = 0.10

// Detector holds learned per-block activation bounds for one network and
// format.
type Detector struct {
	// NetName records which network the bounds describe.
	NetName string
	// DType is the format the bounds were learned under.
	DType numeric.Type
	// Bounds has one cushioned range per paper-style block.
	Bounds []network.Range
}

// Learn profiles the network on the training inputs and returns a detector
// with cushioned bounds. cushion is the relative widening (0.10 for the
// paper's detector).
func Learn(net *network.Network, dt numeric.Type, inputs []*tensor.Tensor, cushion float64) *Detector {
	if len(inputs) == 0 {
		panic("detect: Learn needs at least one input")
	}
	var bounds []network.Range
	for i, in := range inputs {
		exec := net.Forward(dt, in)
		rs := net.BlockRanges(exec)
		if i == 0 {
			bounds = rs
			continue
		}
		for b := range bounds {
			if rs[b].Min < bounds[b].Min {
				bounds[b].Min = rs[b].Min
			}
			if rs[b].Max > bounds[b].Max {
				bounds[b].Max = rs[b].Max
			}
		}
	}
	for b := range bounds {
		bounds[b] = cushioned(bounds[b], cushion)
	}
	return &Detector{NetName: net.Name, DType: dt, Bounds: bounds}
}

// cushioned widens a range by the relative cushion on both sides, per the
// paper: (-1.1·X, 1.1·Y) for a learned range (-X, Y).
func cushioned(r network.Range, cushion float64) network.Range {
	return network.Range{
		Min: r.Min - cushion*abs(r.Min),
		Max: r.Max + cushion*abs(r.Max),
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Check scans the block-end activations of an execution and reports
// whether any value violates the learned bounds — the symptom that flags a
// likely SDC. It allocates nothing and is safe for concurrent use.
func (d *Detector) Check(net *network.Network, exec *network.Execution) bool {
	acts := net.BlockActs(exec)
	if len(acts) != len(d.Bounds) {
		panic(fmt.Sprintf("detect: %d blocks, detector has %d bounds", len(acts), len(d.Bounds)))
	}
	for b, act := range acts {
		r := d.Bounds[b]
		for _, v := range act.Data {
			if v != v || v < r.Min || v > r.Max { // NaN or out of range
				return true
			}
		}
	}
	return false
}

// CheckBlock checks a single block's activations, for hosts that interleave
// detection with layer execution.
func (d *Detector) CheckBlock(block int, act *tensor.Tensor) bool {
	r := d.Bounds[block]
	for _, v := range act.Data {
		if v != v || v < r.Min || v > r.Max {
			return true
		}
	}
	return false
}

// FalseAlarmRate runs the detector over fault-free executions of the given
// inputs and returns the fraction flagged — the residual false-positive
// rate on inputs outside the training set.
func (d *Detector) FalseAlarmRate(net *network.Network, inputs []*tensor.Tensor) float64 {
	if len(inputs) == 0 {
		return 0
	}
	alarms := 0
	for _, in := range inputs {
		if d.Check(net, net.Forward(d.DType, in)) {
			alarms++
		}
	}
	return float64(alarms) / float64(len(inputs))
}
