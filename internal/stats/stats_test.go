package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProportionP(t *testing.T) {
	p := Proportion{Successes: 30, Trials: 120}
	if got := p.P(); got != 0.25 {
		t.Errorf("P = %v, want 0.25", got)
	}
	if got := (Proportion{}).P(); got != 0 {
		t.Errorf("empty P = %v, want 0", got)
	}
}

func TestCI95KnownValue(t *testing.T) {
	// p=0.5, n=100: CI = 1.96*sqrt(0.25/100) = 0.098.
	p := Proportion{Successes: 50, Trials: 100}
	if got := p.CI95(); math.Abs(got-0.098) > 1e-3 {
		t.Errorf("CI95 = %v, want ~0.098", got)
	}
	if got := (Proportion{}).CI95(); got != 0 {
		t.Errorf("empty CI95 = %v, want 0", got)
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := Proportion{Successes: 5, Trials: 50}
	large := Proportion{Successes: 500, Trials: 5000}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestProportionMerge(t *testing.T) {
	a := Proportion{Successes: 3, Trials: 10}
	b := Proportion{Successes: 7, Trials: 30}
	m := a.Merge(b)
	if m.Successes != 10 || m.Trials != 40 {
		t.Errorf("Merge = %+v", m)
	}
}

func TestProportionString(t *testing.T) {
	s := Proportion{Successes: 1, Trials: 4}.String()
	if s != "25.00% ±42.43%" {
		t.Errorf("String = %q", s)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2}
	for q, want := range cases {
		if got := Percentile(xs, q); got != want {
			t.Errorf("Percentile(%v) = %v, want %v", q, got, want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 75); got != 7.5 {
		t.Errorf("Percentile(75) = %v, want 7.5", got)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(empty) did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.99, 10, -0.1, math.NaN()} {
		h.Add(v)
	}
	want := []int{2, 1, 1, 0, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("Counts = %v, want %v", h.Counts, want)
			break
		}
	}
	if h.Under != 2 || h.Over != 1 {
		t.Errorf("Under=%d Over=%d, want 2,1", h.Under, h.Over)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); got != 9 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestPropertyCIBounds(t *testing.T) {
	// Property: 0 <= CI95 <= 1 and p ± CI stays a sane interval for any
	// successes <= trials.
	prop := func(s, n uint16) bool {
		trials := int(n%1000) + 1
		succ := int(s) % (trials + 1)
		p := Proportion{Successes: succ, Trials: trials}
		ci := p.CI95()
		return ci >= 0 && ci <= 1 && p.P() >= 0 && p.P() <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHistogramConservesCount(t *testing.T) {
	prop := func(vals []float64) bool {
		h := NewHistogram(-1, 1, 8)
		for _, v := range vals {
			h.Add(v)
		}
		return h.Total() == len(vals)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestMergedCountsMatchPooledCI is the distributed-campaign invariant:
// binomial counts merged shard-by-shard must yield exactly the point
// estimate and 95% CI of the pooled single-process counts, for any
// partition of the trials.
func TestMergedCountsMatchPooledCI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5000)
		succ := rng.Intn(n + 1)
		pooled := Proportion{Successes: succ, Trials: n}

		// Split into a random number of shards by strided assignment —
		// the same partition shape faultinj.RunShard uses.
		shards := 1 + rng.Intn(16)
		parts := make([]Proportion, shards)
		for i := 0; i < n; i++ {
			s := i % shards
			parts[s].Trials++
			if i < succ { // which trials succeeded is irrelevant to counts
				parts[s].Successes++
			}
		}
		merged := MergeAll(parts...)
		if merged != pooled {
			t.Fatalf("merged %+v != pooled %+v", merged, pooled)
		}
		if math.Float64bits(merged.P()) != math.Float64bits(pooled.P()) {
			t.Fatalf("point estimates diverged")
		}
		if math.Float64bits(merged.CI95()) != math.Float64bits(pooled.CI95()) {
			t.Fatalf("CIs diverged: %v vs %v", merged.CI95(), pooled.CI95())
		}
	}
}

func TestMergeAllEmptyAndSingle(t *testing.T) {
	if got := MergeAll(); got != (Proportion{}) {
		t.Errorf("empty merge = %+v", got)
	}
	p := Proportion{Successes: 3, Trials: 10}
	if got := MergeAll(p); got != p {
		t.Errorf("single merge = %+v", got)
	}
}

// TestBoundsEdgeCases pins the boundary behavior of Bounds: every interval
// is well-defined and clamped to [0, 1], with no NaNs and no degenerate
// zero-width intervals at n=0 (zero trials is total ignorance, so the
// interval is the vacuous [0, 1], not the misleading point [0, 0]).
func TestBoundsEdgeCases(t *testing.T) {
	cases := []struct {
		name           string
		p              Proportion
		wantLo, wantHi float64
		exact          bool
	}{
		{name: "n=0", p: Proportion{}, wantLo: 0, wantHi: 1, exact: true},
		{name: "p=0", p: Proportion{Successes: 0, Trials: 5}, wantLo: 0, wantHi: 0, exact: true},
		{name: "p=1", p: Proportion{Successes: 5, Trials: 5}, wantLo: 1, wantHi: 1, exact: true},
		{name: "interior", p: Proportion{Successes: 1, Trials: 2}},
	}
	for _, tc := range cases {
		lo, hi := tc.p.Bounds()
		if math.IsNaN(lo) || math.IsNaN(hi) {
			t.Errorf("%s: bounds [%v,%v] contain NaN", tc.name, lo, hi)
		}
		if lo < 0 || hi > 1 || lo > hi {
			t.Errorf("%s: bounds [%v,%v] malformed", tc.name, lo, hi)
		}
		if tc.exact && (lo != tc.wantLo || hi != tc.wantHi) {
			t.Errorf("%s: bounds [%v,%v], want [%v,%v]", tc.name, lo, hi, tc.wantLo, tc.wantHi)
		}
	}
}

// TestWilson95EdgeCases pins the Wilson interval at the same boundaries:
// unlike the normal approximation it must keep nonzero width at p̂=0 and
// p̂=1 (certainty from five trials is a lie) and yield [0, 1] at n=0.
func TestWilson95EdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		p     Proportion
		check func(lo, hi float64) bool
	}{
		{"n=0", Proportion{}, func(lo, hi float64) bool { return lo == 0 && hi == 1 }},
		{"p=0", Proportion{Successes: 0, Trials: 5}, func(lo, hi float64) bool { return lo == 0 && hi > 0 && hi < 1 }},
		{"p=1", Proportion{Successes: 5, Trials: 5}, func(lo, hi float64) bool { return hi == 1 && lo > 0 && lo < 1 }},
		{"n=1", Proportion{Successes: 1, Trials: 1}, func(lo, hi float64) bool { return lo > 0 && hi == 1 }},
	}
	for _, tc := range cases {
		lo, hi := tc.p.Wilson95()
		if math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 1 || lo > hi {
			t.Errorf("%s: Wilson bounds [%v,%v] malformed", tc.name, lo, hi)
		}
		if !tc.check(lo, hi) {
			t.Errorf("%s: Wilson bounds [%v,%v] fail boundary condition", tc.name, lo, hi)
		}
	}
}

func TestWilson95KnownValue(t *testing.T) {
	// 5/10 successes: the standard Wilson 95% interval is (0.2366, 0.7634).
	lo, hi := Proportion{Successes: 5, Trials: 10}.Wilson95()
	if math.Abs(lo-0.2366) > 5e-4 || math.Abs(hi-0.7634) > 5e-4 {
		t.Errorf("Wilson95(5/10) = [%v,%v], want ~[0.2366,0.7634]", lo, hi)
	}
}

func TestStratifiedSingleStratumMatchesProportion(t *testing.T) {
	part := Proportion{Successes: 7, Trials: 40}
	s := Stratified{Weights: []float64{1}, Parts: []Proportion{part}}
	if got := s.P(); math.Float64bits(got) != math.Float64bits(part.P()) {
		t.Errorf("single-stratum P = %v, want %v", got, part.P())
	}
	// With one full-weight stratum the plug-in variance reduces to the
	// binomial one, so the CI matches Proportion.CI95 bit for bit.
	if ci := s.CI95(); math.Float64bits(ci) != math.Float64bits(part.CI95()) {
		t.Errorf("single-stratum CI = %v, want %v", ci, part.CI95())
	}
}

func TestStratifiedEdgeCases(t *testing.T) {
	// No sampled strata: vacuous estimate.
	s := Stratified{Weights: []float64{0.5, 0.5}, Parts: make([]Proportion, 2)}
	if p := s.P(); p != 0 {
		t.Errorf("unsampled P = %v", p)
	}
	if ci := s.CI95(); ci != 0 {
		t.Errorf("unsampled CI = %v", ci)
	}
	if lo, hi := s.Bounds(); lo != 0 || hi != 1 {
		t.Errorf("unsampled bounds [%v,%v], want [0,1]", lo, hi)
	}
	// One stratum unsampled: the other's weight renormalizes to 1.
	s.Parts[0] = Proportion{Successes: 2, Trials: 10}
	if p := s.P(); p != 0.2 {
		t.Errorf("renormalized P = %v, want 0.2", p)
	}
	// All-extreme strata must still produce finite, nonzero-width CIs.
	s.Parts[1] = Proportion{Successes: 10, Trials: 10}
	if ci := s.CI95(); math.IsNaN(ci) || ci <= 0 {
		t.Errorf("extreme-strata CI = %v", ci)
	}
	if lo, hi := s.Bounds(); math.IsNaN(lo) || math.IsNaN(hi) || lo < 0 || hi > 1 || lo > hi {
		t.Errorf("extreme-strata bounds [%v,%v]", lo, hi)
	}
}

// TestStratifiedMergeMatchesPooled is the stratified analogue of
// TestMergedCountsMatchPooledCI: per-stratum counts pooled shard-by-shard
// must yield bit-identical estimates to pooling all trials at once,
// regardless of the partition.
func TestStratifiedMergeMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	weights := []float64{0.7, 0.2, 0.1}
	for trial := 0; trial < 100; trial++ {
		pooled := Stratified{Weights: weights, Parts: make([]Proportion, len(weights))}
		for h := range pooled.Parts {
			n := 1 + rng.Intn(500)
			pooled.Parts[h] = Proportion{Successes: rng.Intn(n + 1), Trials: n}
		}
		shards := 1 + rng.Intn(7)
		parts := make([]Stratified, shards)
		for s := range parts {
			parts[s] = Stratified{Weights: weights, Parts: make([]Proportion, len(weights))}
		}
		for h, p := range pooled.Parts {
			for i := 0; i < p.Trials; i++ {
				s := i % shards
				parts[s].Parts[h].Trials++
				if i < p.Successes {
					parts[s].Parts[h].Successes++
				}
			}
		}
		merged := MergeAllStratified(parts...)
		if math.Float64bits(merged.P()) != math.Float64bits(pooled.P()) {
			t.Fatalf("stratified point estimates diverged: %v vs %v", merged.P(), pooled.P())
		}
		if math.Float64bits(merged.CI95()) != math.Float64bits(pooled.CI95()) {
			t.Fatalf("stratified CIs diverged: %v vs %v", merged.CI95(), pooled.CI95())
		}
	}
}

func TestStratifiedMergeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched stratified merge did not panic")
		}
	}()
	a := Stratified{Weights: []float64{1}, Parts: make([]Proportion, 1)}
	b := Stratified{Weights: []float64{0.5, 0.5}, Parts: make([]Proportion, 2)}
	a.Merge(b)
}
