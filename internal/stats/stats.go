// Package stats provides the small statistical toolkit the fault-injection
// campaigns use: binomial proportions with 95% confidence intervals (the
// paper's error bars), histograms and summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// z95 is the two-sided 95% normal quantile used for the paper's error bars.
const z95 = 1.959963984540054

// Proportion is an estimated probability with its sample size.
type Proportion struct {
	// Successes is the number of positive outcomes.
	Successes int
	// Trials is the number of samples.
	Trials int
}

// P returns the point estimate. It is 0 for zero trials.
func (p Proportion) P() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval, the error-bar convention of the paper (§5).
func (p Proportion) CI95() float64 {
	if p.Trials == 0 {
		return 0
	}
	est := p.P()
	return z95 * math.Sqrt(est*(1-est)/float64(p.Trials))
}

// String formats the proportion as a percentage with its error bar.
func (p Proportion) String() string {
	return fmt.Sprintf("%.2f%% ±%.2f%%", p.P()*100, p.CI95()*100)
}

// Merge combines two proportions drawn from the same population.
func (p Proportion) Merge(q Proportion) Proportion {
	return Proportion{Successes: p.Successes + q.Successes, Trials: p.Trials + q.Trials}
}

// MergeAll pools any number of per-shard proportions into the campaign
// estimate. Because the counts are sufficient statistics, the pooled point
// estimate and CI are independent of how the trials were partitioned into
// shards — the property the distributed campaign coordinator relies on
// when it merges streamed partial reports.
func MergeAll(ps ...Proportion) Proportion {
	var total Proportion
	for _, p := range ps {
		total = total.Merge(p)
	}
	return total
}

// Bounds returns the 95% confidence interval [lo, hi] clamped to [0, 1] —
// the form the coordinator's streaming NDJSON endpoint reports. With zero
// trials nothing has been learned, so the interval is the vacuous [0, 1]
// rather than the misleadingly tight point [0, 0] the normal approximation
// would degenerate to.
func (p Proportion) Bounds() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	ci := p.CI95()
	lo, hi = p.P()-ci, p.P()+ci
	return clamp01(lo), clamp01(hi)
}

// Wilson95 returns the 95% Wilson score interval [lo, hi]. Unlike the
// normal approximation it stays well-defined and non-degenerate at the
// boundaries: n=0 yields the vacuous [0, 1], and p̂=0 or p̂=1 yield
// intervals that still have width (the normal approximation collapses to a
// zero-width interval there, overstating certainty).
func (p Proportion) Wilson95() (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	est := p.P()
	z2 := z95 * z95
	den := 1 + z2/n
	center := (est + z2/(2*n)) / den
	half := z95 * math.Sqrt(est*(1-est)/n+z2/(4*n*n)) / den
	return clamp01(center - half), clamp01(center + half)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Stratified is the Horvitz–Thompson estimator of a population proportion
// from stratified samples: per-stratum sample proportions combined with the
// strata's fixed population weights (their probabilities under the uniform
// sampling design the estimate must stay unbiased for). Strata with zero
// weight or zero samples are excluded and the remaining weight mass is
// renormalized, so a partially sampled design still yields an estimate of
// the covered population.
type Stratified struct {
	// Weights[h] is stratum h's population probability under uniform
	// sampling; the weights of one campaign are identical in every shard.
	Weights []float64
	// Parts[h] is the pooled sample proportion observed in stratum h.
	Parts []Proportion
}

// P returns the weighted point estimate Σ W_h·p̂_h over the sampled strata,
// renormalized by their total weight.
func (s Stratified) P() float64 {
	var num, mass float64
	for h := range s.Weights {
		if s.Weights[h] <= 0 || s.Parts[h].Trials == 0 {
			continue
		}
		num += s.Weights[h] * s.Parts[h].P()
		mass += s.Weights[h]
	}
	if mass == 0 {
		return 0
	}
	return num / mass
}

// CI95 returns the half-width of the 95% normal-approximation interval for
// the stratified estimate: z·√(Σ (W_h/W)²·p̂_h(1−p̂_h)/n_h), the textbook
// plug-in variance. A stratum whose sample proportion is 0 or 1 contributes
// zero — the same convention as Proportion.CI95, which is what makes the
// two half-widths directly comparable at equal budget.
func (s Stratified) CI95() float64 {
	var varSum, mass float64
	for h := range s.Weights {
		if s.Weights[h] <= 0 || s.Parts[h].Trials == 0 {
			continue
		}
		mass += s.Weights[h]
	}
	if mass == 0 {
		return 0
	}
	for h := range s.Weights {
		w, part := s.Weights[h], s.Parts[h]
		if w <= 0 || part.Trials == 0 {
			continue
		}
		est := part.P()
		frac := w / mass
		varSum += frac * frac * est * (1 - est) / float64(part.Trials)
	}
	return z95 * math.Sqrt(varSum)
}

// Bounds returns the clamped 95% interval [lo, hi]; like
// Proportion.Bounds it is the vacuous [0, 1] when nothing was sampled.
func (s Stratified) Bounds() (lo, hi float64) {
	var sampled bool
	for h := range s.Weights {
		if s.Weights[h] > 0 && s.Parts[h].Trials > 0 {
			sampled = true
			break
		}
	}
	if !sampled {
		return 0, 1
	}
	ci := s.CI95()
	return clamp01(s.P() - ci), clamp01(s.P() + ci)
}

// Merge pools another stratified sample of the same design (equal weights,
// stratum by stratum) into s. Pooling per-stratum counts before estimating
// is what keeps the merged estimate independent of how trials were
// partitioned into shards — the stratified analogue of MergeAll's
// sufficient-statistics property.
func (s Stratified) Merge(t Stratified) Stratified {
	if len(s.Weights) != len(t.Weights) {
		panic(fmt.Sprintf("stats: merging stratified estimates with %d vs %d strata",
			len(s.Weights), len(t.Weights)))
	}
	out := Stratified{
		Weights: append([]float64(nil), s.Weights...),
		Parts:   make([]Proportion, len(s.Parts)),
	}
	for h := range s.Parts {
		if s.Weights[h] != t.Weights[h] {
			panic(fmt.Sprintf("stats: merging stratified estimates with mismatched weight for stratum %d", h))
		}
		out.Parts[h] = s.Parts[h].Merge(t.Parts[h])
	}
	return out
}

// MergeAllStratified pools any number of per-shard stratified samples of
// one design into the campaign estimate.
func MergeAllStratified(ss ...Stratified) Stratified {
	var total Stratified
	for i, s := range ss {
		if i == 0 {
			total = Stratified{
				Weights: append([]float64(nil), s.Weights...),
				Parts:   append([]Proportion(nil), s.Parts...),
			}
			continue
		}
		total = total.Merge(s)
	}
	return total
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the q-th percentile (0..100) of xs using linear
// interpolation. It panics on an empty slice.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram bins values into n equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count values outside [Min, Max].
	Under, Over int
}

// NewHistogram creates a histogram with n bins over [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", min, max, n))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || v < h.Min {
		h.Under++
		return
	}
	if v >= h.Max {
		h.Over++
		return
	}
	i := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard the max-edge rounding case
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}
