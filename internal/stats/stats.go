// Package stats provides the small statistical toolkit the fault-injection
// campaigns use: binomial proportions with 95% confidence intervals (the
// paper's error bars), histograms and summary helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// z95 is the two-sided 95% normal quantile used for the paper's error bars.
const z95 = 1.959963984540054

// Proportion is an estimated probability with its sample size.
type Proportion struct {
	// Successes is the number of positive outcomes.
	Successes int
	// Trials is the number of samples.
	Trials int
}

// P returns the point estimate. It is 0 for zero trials.
func (p Proportion) P() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval, the error-bar convention of the paper (§5).
func (p Proportion) CI95() float64 {
	if p.Trials == 0 {
		return 0
	}
	est := p.P()
	return z95 * math.Sqrt(est*(1-est)/float64(p.Trials))
}

// String formats the proportion as a percentage with its error bar.
func (p Proportion) String() string {
	return fmt.Sprintf("%.2f%% ±%.2f%%", p.P()*100, p.CI95()*100)
}

// Merge combines two proportions drawn from the same population.
func (p Proportion) Merge(q Proportion) Proportion {
	return Proportion{Successes: p.Successes + q.Successes, Trials: p.Trials + q.Trials}
}

// MergeAll pools any number of per-shard proportions into the campaign
// estimate. Because the counts are sufficient statistics, the pooled point
// estimate and CI are independent of how the trials were partitioned into
// shards — the property the distributed campaign coordinator relies on
// when it merges streamed partial reports.
func MergeAll(ps ...Proportion) Proportion {
	var total Proportion
	for _, p := range ps {
		total = total.Merge(p)
	}
	return total
}

// Bounds returns the 95% confidence interval [lo, hi] clamped to [0, 1] —
// the form the coordinator's streaming NDJSON endpoint reports.
func (p Proportion) Bounds() (lo, hi float64) {
	ci := p.CI95()
	lo, hi = p.P()-ci, p.P()+ci
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the q-th percentile (0..100) of xs using linear
// interpolation. It panics on an empty slice.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram bins values into n equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	// Under and Over count values outside [Min, Max].
	Under, Over int
}

// NewHistogram creates a histogram with n bins over [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 || max <= min {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", min, max, n))
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) || v < h.Min {
		h.Under++
		return
	}
	if v >= h.Max {
		h.Over++
		return
	}
	i := int((v - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if i >= len(h.Counts) { // guard the max-edge rounding case
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}
