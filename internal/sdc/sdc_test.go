package sdc

import (
	"math"
	"testing"

	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// scoreNet is a minimal one-FC network used to fabricate outputs directly.
func scoreNet(withSoftmax bool, classes int) *network.Network {
	fc := layers.NewFC("fc", classes, classes)
	for i := 0; i < classes; i++ {
		fc.Weights[i*classes+i] = 1 // identity
	}
	ls := []layers.Layer{fc}
	if withSoftmax {
		ls = append(ls, layers.NewSoftmax("prob"))
	}
	return &network.Network{
		Name:    "score",
		InShape: tensor.Shape{C: classes, H: 1, W: 1},
		Classes: classes,
		Layers:  ls,
	}
}

// execFor runs the identity network on the given scores.
func execFor(n *network.Network, scores []float64) *network.Execution {
	in := tensor.FromSlice(tensor.Shape{C: len(scores), H: 1, W: 1}, append([]float64(nil), scores...))
	return n.Forward(numeric.Double, in)
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{SDC1: "SDC-1", SDC5: "SDC-5", SDC10: "SDC-10%", SDC20: "SDC-20%"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestNoSDCOnIdenticalRuns(t *testing.T) {
	n := scoreNet(true, 6)
	g := execFor(n, []float64{5, 4, 3, 2, 1, 0})
	o := Classify(n, g, g)
	if o.Any() {
		t.Errorf("identical runs flagged: %+v", o)
	}
	for _, k := range Kinds {
		if !o.Defined[k] {
			t.Errorf("%v should be defined for a softmax network", k)
		}
	}
}

func TestSDC1TopChange(t *testing.T) {
	n := scoreNet(true, 6)
	g := execFor(n, []float64{5, 4, 3, 2, 1, 0})
	f := execFor(n, []float64{4, 5, 3, 2, 1, 0}) // top flips to index 1
	o := Classify(n, g, f)
	if !o.Hit[SDC1] {
		t.Error("SDC-1 not detected on top-1 change")
	}
	if o.Hit[SDC5] {
		t.Error("SDC-5 flagged although faulty top is within golden top-5")
	}
}

func TestSDC5OutsideTopFive(t *testing.T) {
	n := scoreNet(true, 8)
	g := execFor(n, []float64{8, 7, 6, 5, 4, 3, 2, 1})
	f := execFor(n, []float64{1, 2, 3, 4, 5, 6, 7, 100}) // top becomes index 7, golden rank 8
	o := Classify(n, g, f)
	if !o.Hit[SDC1] || !o.Hit[SDC5] {
		t.Errorf("expected SDC-1 and SDC-5, got %+v", o.Hit)
	}
}

func TestSDCConfidenceThresholds(t *testing.T) {
	n := scoreNet(true, 3)
	g := execFor(n, []float64{2, 1, 0})
	// Slightly reduce the winner's score: same ranking, smaller confidence.
	f := execFor(n, []float64{1.7, 1, 0})
	o := Classify(n, g, f)
	if o.Hit[SDC1] || o.Hit[SDC5] {
		t.Errorf("ranking SDCs flagged for unchanged ranking: %+v", o.Hit)
	}
	if !o.Hit[SDC10] {
		t.Error("SDC-10%% should fire for a ~15%% confidence drop")
	}
	if o.Hit[SDC20] {
		t.Error("SDC-20%% should not fire for a ~15%% confidence drop")
	}
}

func TestSDCConfidenceBothThresholds(t *testing.T) {
	n := scoreNet(true, 3)
	g := execFor(n, []float64{2, 1, 0})
	f := execFor(n, []float64{0.9, 1, 0}) // winner changes AND confidence collapses
	o := Classify(n, g, f)
	if !o.Hit[SDC10] || !o.Hit[SDC20] {
		t.Errorf("confidence SDCs not detected: %+v", o.Hit)
	}
}

func TestNoConfidenceSDCWithoutSoftmax(t *testing.T) {
	n := scoreNet(false, 6)
	g := execFor(n, []float64{5, 4, 3, 2, 1, 0})
	f := execFor(n, []float64{0, 1, 2, 3, 4, 5})
	o := Classify(n, g, f)
	if o.Defined[SDC10] || o.Defined[SDC20] {
		t.Error("confidence SDCs defined for a network without softmax (NiN case)")
	}
	if !o.Hit[SDC1] {
		t.Error("SDC-1 must still apply without softmax")
	}
}

func TestCountsAggregation(t *testing.T) {
	var c Counts
	o1 := Outcome{}
	o1.Defined[SDC1], o1.Defined[SDC5] = true, true
	o1.Hit[SDC1] = true
	o2 := Outcome{}
	o2.Defined[SDC1], o2.Defined[SDC5] = true, true
	c.Add(o1)
	c.Add(o2)
	if c.Trials != 2 {
		t.Errorf("Trials = %d", c.Trials)
	}
	if got := c.Probability(SDC1); got != 0.5 {
		t.Errorf("P(SDC1) = %v, want 0.5", got)
	}
	if got := c.Probability(SDC10); got != 0 {
		t.Errorf("P(SDC10) = %v, want 0 (never defined)", got)
	}
}

func TestCountsMerge(t *testing.T) {
	a := Counts{Trials: 2}
	a.Hits[SDC1], a.DefinedTrials[SDC1] = 1, 2
	b := Counts{Trials: 3}
	b.Hits[SDC1], b.DefinedTrials[SDC1] = 2, 3
	a.Merge(b)
	if a.Trials != 5 || a.Hits[SDC1] != 3 || a.DefinedTrials[SDC1] != 5 {
		t.Errorf("Merge = %+v", a)
	}
	if got := a.Probability(SDC1); got != 0.6 {
		t.Errorf("merged P = %v", got)
	}
}

func TestRelativeChange(t *testing.T) {
	cases := []struct {
		g, f, want float64
	}{
		{1, 1.05, 0.05},
		{1, 0.5, 0.5},
		{0.5, 0.5, 0},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := relativeChange(c.g, c.f); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("relativeChange(%v,%v) = %v, want %v", c.g, c.f, got, c.want)
		}
	}
	if got := relativeChange(0, 1); !math.IsInf(got, 1) {
		t.Errorf("relativeChange(0,1) = %v, want +Inf", got)
	}
	if got := relativeChange(1, math.NaN()); !math.IsInf(got, 1) {
		t.Errorf("relativeChange(1,NaN) = %v, want +Inf", got)
	}
}
