// Package sdc classifies the outcome of a faulty DNN inference against its
// fault-free (golden) execution using the paper's four Silent Data
// Corruption criteria (§4.6):
//
//	SDC-1:   the top-ranked element changed
//	SDC-5:   the faulty top-ranked element is outside the golden top five
//	SDC-10%: the top-ranked confidence moved by more than ±10% (relative)
//	SDC-20%: the top-ranked confidence moved by more than ±20% (relative)
//
// SDC-10% and SDC-20% require confidence scores, so they are undefined for
// NiN, which has no softmax (§4.1).
package sdc

import (
	"math"

	"repro/internal/network"
)

// Kind is one of the paper's SDC criteria.
type Kind int

const (
	// SDC1 is a changed top-1 prediction.
	SDC1 Kind = iota
	// SDC5 is a faulty top-1 outside the golden top-5.
	SDC5
	// SDC10 is a >±10% relative change of the top-1 confidence.
	SDC10
	// SDC20 is a >±20% relative change of the top-1 confidence.
	SDC20

	// NumKinds is the number of SDC criteria.
	NumKinds
)

// Kinds lists all four criteria.
var Kinds = []Kind{SDC1, SDC5, SDC10, SDC20}

// String names the criterion as in the paper.
func (k Kind) String() string {
	switch k {
	case SDC1:
		return "SDC-1"
	case SDC5:
		return "SDC-5"
	case SDC10:
		return "SDC-10%"
	case SDC20:
		return "SDC-20%"
	}
	return "SDC-?"
}

// Outcome records which criteria a faulty run triggered. Undefined
// criteria (confidence SDCs for networks without softmax) stay false and
// are reported via Defined.
type Outcome struct {
	Hit     [NumKinds]bool
	Defined [NumKinds]bool
}

// Any reports whether any defined criterion was triggered.
func (o Outcome) Any() bool {
	for k := range o.Hit {
		if o.Hit[k] {
			return true
		}
	}
	return false
}

// Classify compares a faulty execution against the golden execution of
// network n.
func Classify(n *network.Network, golden, faulty *network.Execution) Outcome {
	var o Outcome
	o.Defined[SDC1], o.Defined[SDC5] = true, true

	gTop := golden.Top1()
	fTop := faulty.Top1()
	o.Hit[SDC1] = fTop != gTop

	o.Hit[SDC5] = true
	for _, g := range golden.TopK(5) {
		if g == fTop {
			o.Hit[SDC5] = false
			break
		}
	}

	if n.HasSoftmax() {
		o.Defined[SDC10], o.Defined[SDC20] = true, true
		gConf := golden.Output().Data[gTop]
		fConf := faulty.Output().Data[gTop]
		rel := relativeChange(gConf, fConf)
		o.Hit[SDC10] = rel > 0.10
		o.Hit[SDC20] = rel > 0.20
	}
	return o
}

// relativeChange returns |f-g|/|g|, treating non-finite faulty confidences
// as an unbounded change.
func relativeChange(g, f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return math.Inf(1)
	}
	if g == 0 {
		if f == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(f-g) / math.Abs(g)
}

// Counts aggregates outcomes over a campaign.
type Counts struct {
	Trials int
	Hits   [NumKinds]int
	// DefinedTrials counts the runs where each criterion applied.
	DefinedTrials [NumKinds]int
}

// Add accumulates one outcome.
func (c *Counts) Add(o Outcome) {
	c.Trials++
	for k := range o.Hit {
		if o.Defined[k] {
			c.DefinedTrials[k]++
			if o.Hit[k] {
				c.Hits[k]++
			}
		}
	}
}

// Merge combines campaign counts.
func (c *Counts) Merge(d Counts) {
	c.Trials += d.Trials
	for k := range c.Hits {
		c.Hits[k] += d.Hits[k]
		c.DefinedTrials[k] += d.DefinedTrials[k]
	}
}

// Probability returns the SDC probability for a criterion over the runs
// where it was defined.
func (c *Counts) Probability(k Kind) float64 {
	if c.DefinedTrials[k] == 0 {
		return 0
	}
	return float64(c.Hits[k]) / float64(c.DefinedTrials[k])
}
