// Package pearray is a cycle-level simulation of the row-stationary PE
// array executing one convolution layer: every processing engine holds its
// filter-row weights in a Filter SRAM image, slides an ifmap row through
// its image register, and accumulates partial sums that flow up each
// column — the execution model of Eyeriss that the analytic rowstat
// scheduler summarizes.
//
// The simulator exists for two reasons. First, it validates the abstract
// fault model: a fault addressed physically — (cycle, PE row, PE column,
// latch, bit) — lands on exactly one MAC operand, and the package's tests
// prove the result equals the layers package's per-MAC fault injection.
// Second, it makes dataflow effects observable: the array's accumulation
// order (per-row partial sums, then a column reduction, then cross-pass
// channel accumulation) differs from the serial order of a software loop,
// which matters for non-associative arithmetic below float64.
package pearray

import (
	"fmt"
	"math/rand"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Latch identifies the physical latch a fault strikes inside one PE.
type Latch int

const (
	// LatchWeight is the filter-weight operand register.
	LatchWeight Latch = iota
	// LatchImage is the image-register operand.
	LatchImage
	// LatchPsum is the partial-sum accumulator.
	LatchPsum
)

// String names the latch.
func (l Latch) String() string {
	switch l {
	case LatchWeight:
		return "weight"
	case LatchImage:
		return "image"
	case LatchPsum:
		return "psum"
	}
	return fmt.Sprintf("pearray.Latch(%d)", int(l))
}

// Fault is a physically addressed transient fault: during the MAC executed
// at the given cycle of the given pass by PE (Row, Col), bit Bit of the
// Latch register is flipped, corrupting that single read.
type Fault struct {
	Pass  int
	Cycle int64
	Row   int // filter-row index r within the logical set
	Col   int // ofmap-row index e within the logical set
	Latch Latch
	Bit   int

	// Applied records whether the simulation consumed the fault.
	Applied bool
}

// Sim executes one convolution layer on a logical row-stationary PE set.
type Sim struct {
	Conv  *layers.ConvLayer
	DType numeric.Type
}

// New builds a simulator for a layer under a datapath format.
func New(conv *layers.ConvLayer, dt numeric.Type) *Sim {
	return &Sim{Conv: conv, DType: dt}
}

// Geometry describes the simulated logical PE set and its schedule.
type Geometry struct {
	// Rows (R: filter height) x Cols (E: ofmap height) engines.
	Rows, Cols int
	// Passes = InC x OutC: one (input channel, output channel) filter
	// plane per pass.
	Passes int
	// CyclesPerPass = ofmap width x filter width MACs per PE.
	CyclesPerPass int64
}

// Geometry returns the schedule for an input shape.
func (s *Sim) Geometry(in tensor.Shape) Geometry {
	os := s.Conv.OutShape(in)
	return Geometry{
		Rows:          s.Conv.KH,
		Cols:          os.H,
		Passes:        s.Conv.InC * s.Conv.OutC,
		CyclesPerPass: int64(os.W) * int64(s.Conv.KW),
	}
}

// Run executes the layer and returns its ofmap. A non-nil fault is
// injected at its physical coordinate.
//
// Dataflow per pass p (input channel ic = p % InC, output channel
// oc = p / InC): PE (r, e) performs a 1-D convolution of filter row r with
// ifmap row e*stride + r - pad, producing OW partial sums; each column e
// then reduces its R row-psums and accumulates them into ofmap row e of
// channel oc. The per-PE cycle order is (ow, kw) — one MAC per cycle.
func (s *Sim) Run(in *tensor.Tensor, fault *Fault) *tensor.Tensor {
	conv := s.Conv
	dt := s.DType
	os := conv.OutShape(in.Shape)
	out := tensor.New(os)
	geo := s.Geometry(in.Shape)

	// The ofmap starts from the bias (added once, on the first input
	// channel's pass).
	for p := 0; p < geo.Passes; p++ {
		ic := p % conv.InC
		oc := p / conv.InC
		for e := 0; e < geo.Cols; e++ {
			// Column reduction accumulator for ofmap row e.
			rowPsum := make([]float64, os.W)
			for r := 0; r < geo.Rows; r++ {
				ih := e*conv.Stride + r - conv.Pad
				// The PE's 1-D convolution, one MAC per cycle.
				var cycle int64
				for ow := 0; ow < os.W; ow++ {
					acc := 0.0
					for kw := 0; kw < conv.KW; kw++ {
						iw := ow*conv.Stride + kw - conv.Pad
						var x float64
						if ih >= 0 && ih < in.Shape.H && iw >= 0 && iw < in.Shape.W {
							x = dt.Quantize(in.At(ic, ih, iw))
						}
						w := dt.Quantize(conv.Weights[conv.WeightIndex(oc, ic, r, kw)])
						hit := fault != nil && !fault.Applied &&
							fault.Pass == p && fault.Row == r && fault.Col == e &&
							fault.Cycle == cycle
						if hit {
							fault.Applied = true
							switch fault.Latch {
							case LatchWeight:
								w = dt.FlipBit(w, fault.Bit)
							case LatchImage:
								x = dt.FlipBit(x, fault.Bit)
							case LatchPsum:
								acc = dt.FlipBit(acc, fault.Bit)
							}
						}
						acc = dt.Quantize(acc + dt.Quantize(w*x))
						cycle++
					}
					rowPsum[ow] = acc
				}
				// Vertical accumulation into the column total.
				base := e * os.W
				outRow := out.Data[(oc*os.H)*os.W+base : (oc*os.H)*os.W+base+os.W]
				for ow := 0; ow < os.W; ow++ {
					outRow[ow] = dt.Quantize(outRow[ow] + rowPsum[ow])
				}
			}
		}
		// Bias joins after the first channel pass of each output channel.
		if ic == conv.InC-1 {
			bias := dt.Quantize(conv.Bias[oc])
			for e := 0; e < os.H; e++ {
				for ow := 0; ow < os.W; ow++ {
					i := out.Index(oc, e, ow)
					out.Data[i] = dt.Quantize(out.Data[i] + bias)
				}
			}
		}
	}
	return out
}

// RandomFault draws a uniformly random physical fault coordinate for an
// input shape.
func (s *Sim) RandomFault(rng *rand.Rand, in tensor.Shape) *Fault {
	geo := s.Geometry(in)
	return &Fault{
		Pass:  rng.Intn(geo.Passes),
		Cycle: rng.Int63n(geo.CyclesPerPass),
		Row:   rng.Intn(geo.Rows),
		Col:   rng.Intn(geo.Cols),
		Latch: Latch(rng.Intn(3)),
		Bit:   rng.Intn(s.DType.Width()),
	}
}

// AbstractFault translates a physical fault coordinate into the layers
// package's per-MAC fault descriptor, proving the two models address the
// same operation: pass p, PE (r, e), cycle c corresponds to output element
// (oc, e, ow) at MAC step (ic, r, kw) of the flat accumulation chain.
func (s *Sim) AbstractFault(f *Fault, in tensor.Shape) (layerFault layers.Fault, comparable bool) {
	conv := s.Conv
	os := conv.OutShape(in)
	ic := f.Pass % conv.InC
	oc := f.Pass / conv.InC
	ow := int(f.Cycle) / conv.KW
	kw := int(f.Cycle) % conv.KW

	var target layers.Target
	switch f.Latch {
	case LatchWeight:
		target = layers.TargetWeight
	case LatchImage:
		target = layers.TargetInput
	case LatchPsum:
		// The array's psum order differs from the flat chain (row-major
		// partials vs sequential accumulation), so psum faults are not
		// step-for-step comparable.
		return layers.Fault{}, false
	}
	return layers.Fault{
		OutputIndex: (oc*os.H+f.Col)*os.W + ow,
		MACStep:     (ic*conv.KH+f.Row)*conv.KW + kw,
		Target:      target,
		Bit:         f.Bit,
	}, true
}
