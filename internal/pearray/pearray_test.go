package pearray

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// fxConv builds a conv layer with values small enough that 32b_rb26
// fixed-point arithmetic is exact and saturation-free, making every
// summation order produce identical bits — the precondition for the
// bit-exact equivalence tests.
func fxConv(seed int64, inC, outC, k, stride, pad int) *layers.ConvLayer {
	rng := rand.New(rand.NewSource(seed))
	l := layers.NewConv("c", inC, outC, k, stride, pad)
	for i := range l.Weights {
		l.Weights[i] = float64(rng.Intn(41)-20) / 256 // grid-exact, small
	}
	for i := range l.Bias {
		l.Bias[i] = float64(rng.Intn(17)-8) / 256
	}
	return l
}

func fxInput(seed int64, c, h, w int) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	in := tensor.New(tensor.Shape{C: c, H: h, W: w})
	for i := range in.Data {
		in.Data[i] = float64(rng.Intn(41)-20) / 256
	}
	return in
}

func TestGeometry(t *testing.T) {
	l := fxConv(1, 2, 3, 3, 1, 1)
	s := New(l, numeric.Fx32RB26)
	geo := s.Geometry(tensor.Shape{C: 2, H: 6, W: 6})
	if geo.Rows != 3 || geo.Cols != 6 {
		t.Errorf("set = %dx%d, want 3x6", geo.Rows, geo.Cols)
	}
	if geo.Passes != 6 {
		t.Errorf("passes = %d, want 6", geo.Passes)
	}
	if geo.CyclesPerPass != 18 {
		t.Errorf("cycles/pass = %d, want 18", geo.CyclesPerPass)
	}
}

func TestFaultFreeMatchesLayersExactly(t *testing.T) {
	// Fixed point is associativity-safe, so the PE array's row-major
	// accumulation must equal the serial software loop bit for bit.
	dt := numeric.Fx32RB26
	for trial := int64(0); trial < 20; trial++ {
		l := fxConv(trial, 1+int(trial%3), 1+int(trial%4), 1+int(trial%3), 1+int(trial%2), int(trial%2))
		in := fxInput(trial+100, l.InC, 5+int(trial%4), 5+int(trial%4))
		sim := New(l, dt)
		got := sim.Run(in, nil)
		want := l.Forward(&layers.Context{DType: dt}, in)
		if got.Shape != want.Shape {
			t.Fatalf("trial %d: shape %v vs %v", trial, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("trial %d: out[%d] = %v, want %v", trial, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestFaultFreeMatchesLayersWithinTolerance(t *testing.T) {
	// Under floating point the accumulation orders differ, but only at
	// rounding scale.
	rng := rand.New(rand.NewSource(9))
	l := layers.NewConv("c", 3, 4, 3, 1, 1)
	for i := range l.Weights {
		l.Weights[i] = rng.NormFloat64()
	}
	for i := range l.Bias {
		l.Bias[i] = rng.NormFloat64()
	}
	in := tensor.New(tensor.Shape{C: 3, H: 8, W: 8})
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	got := New(l, numeric.Double).Run(in, nil)
	want := l.Forward(&layers.Context{DType: numeric.Double}, in)
	for i := range want.Data {
		diff := math.Abs(got.Data[i] - want.Data[i])
		scale := math.Max(1, math.Abs(want.Data[i]))
		if diff/scale > 1e-12 {
			t.Fatalf("out[%d] = %v vs %v (relative %g)", i, got.Data[i], want.Data[i], diff/scale)
		}
	}
}

func TestPhysicalFaultMatchesAbstractFault(t *testing.T) {
	// A (cycle, PE, latch, bit) weight/image fault in the array must
	// produce exactly the ofmap of the layers package's per-MAC fault.
	dt := numeric.Fx32RB26
	l := fxConv(3, 2, 3, 3, 1, 1)
	in := fxInput(103, 2, 6, 6)
	sim := New(l, dt)
	rng := rand.New(rand.NewSource(17))

	tested := 0
	for tested < 60 {
		f := sim.RandomFault(rng, in.Shape)
		if f.Latch == LatchPsum {
			continue // different accumulation order; covered separately
		}
		f.Bit = rng.Intn(30) // keep clear of sign-bit saturation clipping
		af, ok := sim.AbstractFault(f, in.Shape)
		if !ok {
			t.Fatalf("weight/image fault not comparable: %+v", f)
		}
		phys := sim.Run(in, f)
		if !f.Applied {
			t.Fatalf("physical fault not applied: %+v", f)
		}
		abs := l.Forward(&layers.Context{DType: dt, Fault: &af}, in)
		if !af.Applied {
			t.Fatalf("abstract fault not applied: %+v", af)
		}
		for i := range abs.Data {
			if phys.Data[i] != abs.Data[i] {
				t.Fatalf("fault %+v -> %+v: out[%d] = %v (physical) vs %v (abstract)",
					f, af, i, phys.Data[i], abs.Data[i])
			}
		}
		tested++
	}
}

func TestPsumFaultCorruptsOneOutput(t *testing.T) {
	dt := numeric.Fx32RB26
	l := fxConv(5, 2, 2, 3, 1, 1)
	in := fxInput(105, 2, 6, 6)
	sim := New(l, dt)
	golden := sim.Run(in, nil)
	f := &Fault{Pass: 1, Cycle: 7, Row: 1, Col: 2, Latch: LatchPsum, Bit: 27}
	faulty := sim.Run(in, f)
	if !f.Applied {
		t.Fatal("psum fault not applied")
	}
	diff := 0
	for i := range golden.Data {
		if golden.Data[i] != faulty.Data[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("psum fault corrupted %d outputs, want exactly 1", diff)
	}
}

func TestFaultAppliedExactlyOnce(t *testing.T) {
	// The transient fault corrupts one read even when the same PE reuses
	// the same weight in later cycles.
	dt := numeric.Fx32RB26
	l := fxConv(7, 1, 1, 3, 1, 1)
	in := fxInput(107, 1, 6, 6)
	sim := New(l, dt)
	golden := sim.Run(in, nil)
	f := &Fault{Pass: 0, Cycle: 4, Row: 0, Col: 0, Latch: LatchWeight, Bit: 28}
	faulty := sim.Run(in, f)
	diff := 0
	for i := range golden.Data {
		if golden.Data[i] != faulty.Data[i] {
			diff++
		}
	}
	// One corrupted MAC feeds exactly one output element.
	if diff > 1 {
		t.Errorf("transient weight fault corrupted %d outputs, want <= 1", diff)
	}
}

func TestRandomFaultInRange(t *testing.T) {
	l := fxConv(11, 2, 3, 3, 1, 1)
	sim := New(l, numeric.Fx16RB10)
	rng := rand.New(rand.NewSource(23))
	shape := tensor.Shape{C: 2, H: 6, W: 6}
	geo := sim.Geometry(shape)
	for i := 0; i < 500; i++ {
		f := sim.RandomFault(rng, shape)
		if f.Pass < 0 || f.Pass >= geo.Passes || f.Cycle < 0 || f.Cycle >= geo.CyclesPerPass {
			t.Fatalf("fault schedule coords out of range: %+v", f)
		}
		if f.Row < 0 || f.Row >= geo.Rows || f.Col < 0 || f.Col >= geo.Cols {
			t.Fatalf("fault PE coords out of range: %+v", f)
		}
		if f.Bit < 0 || f.Bit >= 16 {
			t.Fatalf("fault bit out of range: %+v", f)
		}
	}
}

func TestLatchStrings(t *testing.T) {
	if LatchWeight.String() != "weight" || LatchImage.String() != "image" || LatchPsum.String() != "psum" {
		t.Error("latch names drifted")
	}
}
