// Package accel models the canonical DNN accelerator datapath of the
// paper's Figure 1: an array of processing engines (PEs), each with an ALU
// consisting of a multiplier and an adder performing multiply-accumulate
// (MAC) operations. Faults in the datapath originate in the latches of the
// execution units; the minimum latch set to implement one MAC stage is the
// two operand latches, the product latch and the accumulator latch, each
// at the datapath word width — the conservative assumption the paper makes
// for its FIT calculation (§5.1.5).
//
// The package maps a random micro-architectural fault (an upset of one
// latch bit — or, for multi-bit upsets, a span of adjacent latch bits —
// during one MAC) onto the simulated computation: a (layer, output
// element, MAC step, latch, bit) coordinate consumed by the layers
// package.
package accel

import (
	"fmt"
	"math/rand"

	"repro/internal/layers"
	"repro/internal/network"
	"repro/internal/numeric"
)

// LatchesPerPE is the minimum latch count of the canonical ALU: weight
// operand, activation operand, multiplier output and accumulator.
const LatchesPerPE = 4

// Datapath describes the execution-unit latch plane of an accelerator.
type Datapath struct {
	// NumPEs is the number of processing engines (1344 for Eyeriss
	// projected to 16 nm, Table 7).
	NumPEs int
	// DType is the datapath word width format.
	DType numeric.Type
}

// LatchBitsPerPE returns the number of datapath latch bits in one PE.
func (d Datapath) LatchBitsPerPE() int { return LatchesPerPE * d.DType.Width() }

// TotalLatchBits returns the number of datapath latch bits in the array —
// the S_component term of Eq. 1 for datapath faults.
func (d Datapath) TotalLatchBits() int64 {
	return int64(d.NumPEs) * int64(d.LatchBitsPerPE())
}

// Site is one concrete datapath fault: a single-bit upset consumed by one
// MAC of one layer of one inference.
type Site struct {
	// Layer indexes into the network's Layers slice (always a CONV/FC).
	Layer int
	// Fault carries the (output element, MAC step, latch, bit) coordinate.
	Fault layers.Fault
}

// String formats the site for logs.
func (s Site) String() string {
	return fmt.Sprintf("layer=%d out=%d step=%d %s bit=%d",
		s.Layer, s.Fault.OutputIndex, s.Fault.MACStep, s.Fault.Target, s.Fault.Bit)
}

// Profile precomputes the MAC geometry of a network so random sites can be
// drawn in O(#MAC-layers).
type Profile struct {
	net *network.Network
	dt  numeric.Type
	// layerIdx[i] is the network layer index of MAC layer i.
	layerIdx []int
	// chainLen[i] is the accumulation-chain length of MAC layer i.
	chainLen []int
	// macs[i] is the MAC count of MAC layer i; cum is the running total.
	macs []int64
	cum  []int64
	// total is the network's total MAC count.
	total int64
}

// NewProfile builds the fault-site geometry for a network under a format.
func NewProfile(net *network.Network, dt numeric.Type) *Profile {
	p := &Profile{net: net, dt: dt}
	shape := net.InShape
	for i, l := range net.Layers {
		if m := l.MACs(shape); m > 0 {
			p.layerIdx = append(p.layerIdx, i)
			p.macs = append(p.macs, m)
			p.total += m
			p.cum = append(p.cum, p.total)
			switch cl := l.(type) {
			case *layers.ConvLayer:
				p.chainLen = append(p.chainLen, cl.MACChainLen())
			case *layers.FCLayer:
				p.chainLen = append(p.chainLen, cl.MACChainLen())
			default:
				panic(fmt.Sprintf("accel: layer %s reports MACs but has no chain length", l.Name()))
			}
		}
		shape = l.OutShape(shape)
	}
	if p.total == 0 {
		panic(fmt.Sprintf("accel: network %s has no MAC layers", net.Name))
	}
	return p
}

// TotalMACs returns the network's MAC count per inference.
func (p *Profile) TotalMACs() int64 { return p.total }

// NumMACLayers returns the number of CONV/FC layers.
func (p *Profile) NumMACLayers() int { return len(p.layerIdx) }

// LayerMACs returns the MAC count of MAC layer i (paper-style block i).
func (p *Profile) LayerMACs(i int) int64 { return p.macs[i] }

// RandomSite draws a fault site uniformly over every (MAC, latch, bit)
// coordinate of one inference — the paper's random datapath injection.
func (p *Profile) RandomSite(rng *rand.Rand) Site {
	mac := rng.Int63n(p.total)
	block := 0
	for mac >= p.cum[block] {
		block++
	}
	if block > 0 {
		mac -= p.cum[block-1]
	}
	return p.siteForMAC(rng, block, mac, rng.Intn(p.dt.Width()))
}

// RandomSiteMBU draws like RandomSite but models a multi-bit upset: every
// injection flips mbu adjacent bits, so the base bit is drawn uniformly
// over the word's Width()−mbu+1 in-word spans and Fault.Width records the
// span. PRNG draw order (MAC index, base bit, latch) matches RandomSite;
// mbu ≤ 1 is exactly RandomSite.
func (p *Profile) RandomSiteMBU(rng *rand.Rand, mbu int) Site {
	if mbu <= 1 {
		return p.RandomSite(rng)
	}
	mac := rng.Int63n(p.total)
	block := 0
	for mac >= p.cum[block] {
		block++
	}
	if block > 0 {
		mac -= p.cum[block-1]
	}
	s := p.siteForMAC(rng, block, mac, rng.Intn(p.dt.Width()-mbu+1))
	s.Fault.Width = mbu
	return s
}

// RandomSiteInBlock draws a site uniformly over the MACs of one paper-style
// block (CONV/FC layer position) — the Fig. 6 per-layer experiment.
func (p *Profile) RandomSiteInBlock(rng *rand.Rand, block int) Site {
	mac := rng.Int63n(p.macs[block])
	return p.siteForMAC(rng, block, mac, rng.Intn(p.dt.Width()))
}

// RandomSiteInBlockWithBit draws a site uniformly over the MACs of one
// paper-style block with a fixed flipped-bit position — the conditional
// distribution a (block, bit) stratum of the stratified sampler injects
// from. Consumes exactly two PRNG values: the MAC index and the latch.
func (p *Profile) RandomSiteInBlockWithBit(rng *rand.Rand, block, bit int) Site {
	mac := rng.Int63n(p.macs[block])
	return p.siteForMAC(rng, block, mac, bit)
}

// BlockWeight returns the probability that a uniform random site lands in
// paper-style block i: the block's share of the network's MACs. (Latches
// and bits are uniform within a MAC, so they do not change the share.)
func (p *Profile) BlockWeight(i int) float64 {
	return float64(p.macs[i]) / float64(p.total)
}

// RandomSiteWithBit draws a random MAC and latch but fixes the flipped bit
// position — the Fig. 4 per-bit sensitivity experiment.
func (p *Profile) RandomSiteWithBit(rng *rand.Rand, bit int) Site {
	mac := rng.Int63n(p.total)
	block := 0
	for mac >= p.cum[block] {
		block++
	}
	if block > 0 {
		mac -= p.cum[block-1]
	}
	return p.siteForMAC(rng, block, mac, bit)
}

// RandomSiteNoBit draws a fault site uniformly over every (MAC, latch)
// coordinate of one inference, leaving the bit position undrawn (Fault.Bit
// is the -1 sentinel) — the site draw of the bit-parallel evaluation modes,
// which evaluate every bit of the drawn site. Consumes exactly two PRNG
// values: the MAC index and the latch.
func (p *Profile) RandomSiteNoBit(rng *rand.Rand) Site {
	mac := rng.Int63n(p.total)
	block := 0
	for mac >= p.cum[block] {
		block++
	}
	if block > 0 {
		mac -= p.cum[block-1]
	}
	return p.siteForMAC(rng, block, mac, -1)
}

// RandomSiteInBlockNoBit draws a bitless site uniformly over the MACs of
// one paper-style block — the within-stratum draw of a site-mode stratified
// main phase. Consumes exactly two PRNG values: the MAC index and the
// latch.
func (p *Profile) RandomSiteInBlockNoBit(rng *rand.Rand, block int) Site {
	mac := rng.Int63n(p.macs[block])
	return p.siteForMAC(rng, block, mac, -1)
}

func (p *Profile) siteForMAC(rng *rand.Rand, block int, mac int64, bit int) Site {
	chain := int64(p.chainLen[block])
	return Site{
		Layer: p.layerIdx[block],
		Fault: layers.Fault{
			OutputIndex: int(mac / chain),
			MACStep:     int(mac % chain),
			Target:      layers.Target(rng.Intn(int(layers.NumTargets))),
			Bit:         bit,
		},
	}
}

// BlockOfSite returns the paper-style block number of a site.
func (p *Profile) BlockOfSite(s Site) int {
	for i, li := range p.layerIdx {
		if li == s.Layer {
			return i
		}
	}
	panic(fmt.Sprintf("accel: site layer %d is not a MAC layer", s.Layer))
}
