package accel

import (
	"math/rand"
	"testing"

	"repro/internal/layers"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

func testNet() *network.Network {
	conv := layers.NewConv("conv1", 1, 2, 3, 1, 1) // out 2x4x4, chain 9, MACs 288
	fc := layers.NewFC("fc2", 2*4*4, 5)            // chain 32, MACs 160
	n := &network.Network{
		Name:    "t",
		InShape: tensor.Shape{C: 1, H: 4, W: 4},
		Classes: 5,
		Layers: []layers.Layer{
			conv,
			layers.NewReLU("relu1"),
			fc,
		},
	}
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return n
}

func TestDatapathLatchBits(t *testing.T) {
	d := Datapath{NumPEs: 1344, DType: numeric.Fx16RB10}
	if got := d.LatchBitsPerPE(); got != 64 {
		t.Errorf("LatchBitsPerPE = %d, want 64 (4 latches x 16 bits)", got)
	}
	if got := d.TotalLatchBits(); got != 1344*64 {
		t.Errorf("TotalLatchBits = %d", got)
	}
	d32 := Datapath{NumPEs: 10, DType: numeric.Float}
	if got := d32.TotalLatchBits(); got != 10*4*32 {
		t.Errorf("TotalLatchBits(FLOAT) = %d", got)
	}
}

func TestProfileGeometry(t *testing.T) {
	p := NewProfile(testNet(), numeric.Float16)
	if p.NumMACLayers() != 2 {
		t.Fatalf("NumMACLayers = %d, want 2", p.NumMACLayers())
	}
	if got := p.LayerMACs(0); got != 288 {
		t.Errorf("conv MACs = %d, want 288", got)
	}
	if got := p.LayerMACs(1); got != 160 {
		t.Errorf("fc MACs = %d, want 160", got)
	}
	if got := p.TotalMACs(); got != 448 {
		t.Errorf("TotalMACs = %d, want 448", got)
	}
}

func TestRandomSiteValidCoordinates(t *testing.T) {
	net := testNet()
	p := NewProfile(net, numeric.Float16)
	rng := rand.New(rand.NewSource(1))
	sawConv, sawFC := false, false
	for i := 0; i < 2000; i++ {
		s := p.RandomSite(rng)
		switch s.Layer {
		case 0:
			sawConv = true
			if s.Fault.OutputIndex < 0 || s.Fault.OutputIndex >= 32 {
				t.Fatalf("conv output index %d out of range", s.Fault.OutputIndex)
			}
			if s.Fault.MACStep < 0 || s.Fault.MACStep >= 9 {
				t.Fatalf("conv MAC step %d out of range", s.Fault.MACStep)
			}
		case 2:
			sawFC = true
			if s.Fault.OutputIndex < 0 || s.Fault.OutputIndex >= 5 {
				t.Fatalf("fc output index %d out of range", s.Fault.OutputIndex)
			}
			if s.Fault.MACStep < 0 || s.Fault.MACStep >= 32 {
				t.Fatalf("fc MAC step %d out of range", s.Fault.MACStep)
			}
		default:
			t.Fatalf("site in non-MAC layer %d", s.Layer)
		}
		if s.Fault.Bit < 0 || s.Fault.Bit >= 16 {
			t.Fatalf("bit %d out of range for FLOAT16", s.Fault.Bit)
		}
		if s.Fault.Target < 0 || s.Fault.Target >= layers.NumTargets {
			t.Fatalf("target %v out of range", s.Fault.Target)
		}
	}
	if !sawConv || !sawFC {
		t.Error("random sites did not cover both MAC layers")
	}
}

func TestRandomSiteWeightedByMACs(t *testing.T) {
	// Conv has 288/448 = 64% of the MACs; the site distribution must
	// follow.
	p := NewProfile(testNet(), numeric.Float16)
	rng := rand.New(rand.NewSource(2))
	conv := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.RandomSite(rng).Layer == 0 {
			conv++
		}
	}
	frac := float64(conv) / n
	if frac < 0.61 || frac > 0.68 {
		t.Errorf("conv site fraction = %v, want ~0.643", frac)
	}
}

func TestRandomSiteInBlock(t *testing.T) {
	p := NewProfile(testNet(), numeric.Float)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		if s := p.RandomSiteInBlock(rng, 1); s.Layer != 2 {
			t.Fatalf("block-1 site in layer %d", s.Layer)
		}
	}
}

func TestRandomSiteWithBit(t *testing.T) {
	p := NewProfile(testNet(), numeric.Fx16RB10)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		if s := p.RandomSiteWithBit(rng, 14); s.Fault.Bit != 14 {
			t.Fatalf("bit = %d, want 14", s.Fault.Bit)
		}
	}
}

func TestBlockOfSite(t *testing.T) {
	p := NewProfile(testNet(), numeric.Float16)
	if got := p.BlockOfSite(Site{Layer: 0}); got != 0 {
		t.Errorf("BlockOfSite(conv) = %d", got)
	}
	if got := p.BlockOfSite(Site{Layer: 2}); got != 1 {
		t.Errorf("BlockOfSite(fc) = %d", got)
	}
}

func TestBlockOfSitePanicsOnNonMAC(t *testing.T) {
	p := NewProfile(testNet(), numeric.Float16)
	defer func() {
		if recover() == nil {
			t.Error("no panic for non-MAC layer site")
		}
	}()
	p.BlockOfSite(Site{Layer: 1})
}

func TestProfilesForAllModels(t *testing.T) {
	// Every Table 2 model must expose a valid site geometry, with block
	// counts matching the paper (ConvNet 5, AlexNet/CaffeNet 8, NiN 12).
	want := map[string]int{"ConvNet": 5, "AlexNet": 8, "CaffeNet": 8, "NiN": 12}
	for _, name := range models.Names {
		p := NewProfile(models.Build(name), numeric.Float16)
		if got := p.NumMACLayers(); got != want[name] {
			t.Errorf("%s: %d MAC layers, want %d", name, got, want[name])
		}
		if p.TotalMACs() <= 0 {
			t.Errorf("%s: no MACs", name)
		}
	}
}

func TestSiteString(t *testing.T) {
	s := Site{Layer: 2, Fault: layers.Fault{OutputIndex: 7, MACStep: 3, Target: layers.TargetProduct, Bit: 14}}
	if got := s.String(); got != "layer=2 out=7 step=3 product-latch bit=14" {
		t.Errorf("String = %q", got)
	}
}
