package repro

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/accel"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/fit"
	"repro/internal/harden"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/rowstat"
	"repro/internal/sdc"
	"repro/internal/systolic"
	"repro/internal/tensor"
	"repro/internal/train"
)

// TestEndToEndPipeline exercises the whole stack the way a user of the
// library would: build a model, run golden inference, inject faults on
// every surface (datapath, buffer hierarchy, systolic array), learn and
// deploy the detector, compute FIT, and derive a hardening plan —
// asserting the cross-module invariants hold.
func TestEndToEndPipeline(t *testing.T) {
	const name = "ConvNet"
	dt := numeric.Fx16RB10
	net := models.Build(name)
	inputs := []*tensor.Tensor{models.InputFor(name, 0), models.InputFor(name, 1)}

	// 1. Datapath campaign.
	camp := faultinj.New(net, dt, inputs)
	det := detect.Learn(net, dt, []*tensor.Tensor{models.InputFor(name, 100), models.InputFor(name, 101)}, detect.DefaultCushion)
	report := camp.Run(faultinj.Options{
		N: 200, Seed: 5,
		Detector: func(e *network.Execution) bool { return det.Check(net, e) },
	})
	if report.Counts.Trials != 200 {
		t.Fatalf("trials = %d", report.Counts.Trials)
	}
	dpSDC := report.Counts.Probability(sdc.SDC1)

	// 2. Buffer campaign for the dominant buffer.
	bcamp := &eyeriss.Campaign{
		Build: func() *network.Network { return models.Build(name) },
		DType: dt, Inputs: inputs,
		Residency: rowstat.New(net, rowstat.Eyeriss16nm).ResidencyWeights(),
	}
	breport := bcamp.Run(eyeriss.FilterSRAM, eyeriss.Options{N: 120, Seed: 7})
	bufSDC := breport.Counts.Probability(sdc.SDC1)

	// 3. Systolic campaign on the weight-stationary array surface.
	scamp := &systolic.Campaign{
		Build: func() *network.Network { return models.Build(name) },
		DType: dt, Inputs: inputs,
	}
	sreport := scamp.Run(systolic.Options{N: 120, Seed: 8})
	if sreport.Counts.Trials != 120 {
		t.Fatalf("systolic trials = %d", sreport.Counts.Trials)
	}
	sysSDC := sreport.Counts.Probability(sdc.SDC1)

	// 4. Reuse makes buffer faults worse than datapath faults.
	if bufSDC < dpSDC {
		t.Errorf("Filter SRAM SDC %.3f below datapath SDC %.3f — reuse model broken", bufSDC, dpSDC)
	}

	// 5. FIT arithmetic composes across all three surfaces.
	dp := eyeriss.Params16nm.Datapath(dt)
	total := fit.Total([]fit.Component{
		{Name: "datapath", Bits: dp.TotalLatchBits(), SDCProb: dpSDC},
		eyeriss.FITComponent(eyeriss.Params16nm, eyeriss.FilterSRAM, bufSDC),
		systolic.FITComponent(systolic.LatchBits(systolic.DefaultParams, dt), sysSDC),
	})
	if total <= 0 {
		t.Fatal("total FIT not positive")
	}

	// 6. Per-bit sensitivity drives a hardening plan that meets its target.
	profile := accel.NewProfile(net, dt)
	_ = profile
	f4 := core.Fig4(core.Config{Injections: 320, Inputs: 1, Seed: 9}, name, dt)
	s := harden.Sensitivity(f4.Sensitivity())
	if s.Total() <= 0 {
		t.Skip("no SDC-causing bits at this campaign size")
	}
	plan, ok := harden.MultiPlan(s, 50)
	if !ok {
		t.Fatal("50x hardening target unreachable")
	}
	if got := s.Total() / plan.ResidualFIT(s); got < 50 {
		t.Errorf("hardening plan achieved %.1fx, want >= 50x", got)
	}
	if plan.Area() <= 0 || plan.Area() > 2.5 {
		t.Errorf("plan area overhead %.2f out of a sane range", plan.Area())
	}
}

// TestTrainedWeightsRoundTripThroughCampaign trains briefly, saves, loads
// through the pretrained path, and verifies campaign determinism across
// the round trip.
func TestTrainedWeightsRoundTripThroughCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	const name = "ConvNet"
	dir := t.TempDir()
	trained := models.BuildTrained(name, 60, 3)
	if err := models.SaveWeights(trained, filepath.Join(dir, name+".weights")); err != nil {
		t.Fatal(err)
	}
	loaded, ok, err := models.LoadPretrained(name, dir)
	if err != nil || !ok {
		t.Fatalf("LoadPretrained: ok=%v err=%v", ok, err)
	}

	in := []*tensor.Tensor{models.InputFor(name, 0)}
	opt := faultinj.Options{N: 80, Seed: 13}
	r1 := faultinj.New(trained, numeric.Float16, in).Run(opt)
	r2 := faultinj.New(loaded, numeric.Float16, in).Run(opt)
	if r1.Counts != r2.Counts {
		t.Error("campaign diverged across the save/load round trip")
	}
}

// TestTrainingImprovesLossEndToEnd ensures the trainer works on a real
// model-zoo network end to end.
func TestTrainingImprovesLossEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	net := models.Build("ConvNet")
	samples := models.TrainingSamplesCapped("ConvNet", 40, 0)
	tr := train.New(net, 0.01, 0.9)
	first, _ := tr.Step(samples[:8])
	var last float64
	for i := 0; i < 25; i++ {
		last, _ = tr.Step(samples[:8])
	}
	if math.IsNaN(last) || last >= first {
		t.Errorf("loss did not improve: %.4f -> %.4f", first, last)
	}
}
