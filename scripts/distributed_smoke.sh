#!/usr/bin/env bash
# Distributed-campaign smoke test: boot a coordinator plus two loopback
# workers (one of which dies hard while holding a lease), SIGKILL the
# coordinator mid-campaign, resume it from its checkpoint, and assert the
# final merged report is byte-identical to an uninterrupted single-process
# run of the same spec.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
cleanup() {
    jobs -p | xargs -r kill -9 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/faultserve" ./cmd/faultserve

SPEC=(-net ConvNet -dtype FLOAT16 -n 240 -inputs 2 -seed 7 -shards 8 -track-values 32 -track-spread)

json_field() { # json_field <url> <field>
    curl -fsS "$1" | sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p"
}

echo "== baseline: uninterrupted solo run"
"$tmp/faultserve" -role solo "${SPEC[@]}" -out "$tmp/solo.json"

echo "== phase 1: coordinator + 2 workers, then SIGKILL the coordinator"
"$tmp/faultserve" -role coordinator "${SPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/addr" -checkpoint "$tmp/ckpt" \
    -lease-ttl 2s -out "$tmp/unreached.json" &
coord=$!
for _ in $(seq 100); do [ -s "$tmp/addr" ] && break; sleep 0.1; done
base="http://$(cat "$tmp/addr")"

# Worker A completes 3 shards, takes a 4th lease and exits the way SIGKILL
# would (no report, no heartbeat); worker B completes 2 shards cleanly.
"$tmp/faultserve" -role worker -join "$base" -crash-after 3 || true
"$tmp/faultserve" -role worker -join "$base" -max-leases 2

done_shards=$(json_field "$base/v1/status" completed_shards)
echo "   $done_shards/8 shards checkpointed"
[ "$done_shards" -eq 5 ] || { echo "FAIL: expected 5 completed shards"; exit 1; }
kill -9 "$coord"
wait "$coord" 2>/dev/null || true

echo "== phase 2: resume from checkpoint, finish with 2 workers"
"$tmp/faultserve" -role coordinator "${SPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/addr2" -checkpoint "$tmp/ckpt" \
    -lease-ttl 2s -linger 2s -out "$tmp/resumed.json" &
coord2=$!
for _ in $(seq 100); do [ -s "$tmp/addr2" ] && break; sleep 0.1; done
base2="http://$(cat "$tmp/addr2")"

resumed=$(json_field "$base2/v1/status" resumed_shards)
echo "   coordinator resumed $resumed shards without re-running them"
[ "$resumed" -eq 5 ] || { echo "FAIL: expected 5 resumed shards"; exit 1; }

"$tmp/faultserve" -role worker -join "$base2" &
"$tmp/faultserve" -role worker -join "$base2" &
wait "$coord2"

echo "== compare resumed-distributed report against the solo baseline"
if ! cmp -s "$tmp/solo.json" "$tmp/resumed.json"; then
    echo "FAIL: resumed distributed report differs from solo run"
    diff "$tmp/solo.json" "$tmp/resumed.json" | head -20
    exit 1
fi
echo "OK: resume re-ran only unfinished shards and merged bit-identical to solo"
