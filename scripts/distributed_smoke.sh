#!/usr/bin/env bash
# Distributed-campaign smoke test: boot a coordinator plus two loopback
# workers (one of which dies hard while holding a lease), SIGKILL the
# coordinator mid-campaign, resume it from its checkpoint, and assert the
# final merged report is byte-identical to an uninterrupted single-process
# run of the same spec. A second leg runs the same drill on a stratified
# Eyeriss buffer campaign, then replays it pilot-free from the recorded
# strata artifact (-prior) and checks distributed == solo there too. A
# systolic leg repeats the crash-and-resume drill on a stratified
# weight-stationary array campaign with 3-bit MBU injections, killing the
# coordinator before the pilot->allocation boundary; an output-stationary
# leg repeats it under the -dataflow output corruption-front geometry. A
# multi-tenant leg queues two concurrent campaigns from different
# tenants onto one authenticated control plane and worker fleet, SIGKILLs
# the control plane mid-run, resumes it from the journal, and checks both
# merged reports byte-equal their solo baselines — plus 401 refusal
# without a token and graceful worker drain on SIGTERM. A fourth leg
# restarts the settled plane with a tiny compaction threshold: load-time
# compaction must shrink the journal and retire the finished campaigns
# (gone after one more restart), and a new campaign driven by a
# batched-lease (-prefetch) worker survives a SIGKILL landing right after
# size-triggered compaction churn, resuming to a report byte-identical to
# solo.
set -euo pipefail

cd "$(dirname "$0")/.."
tmp=$(mktemp -d)
cleanup() {
    jobs -p | xargs -r kill -9 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/faultserve" ./cmd/faultserve

SPEC=(-net ConvNet -dtype FLOAT16 -n 240 -inputs 2 -seed 7 -shards 8 -track-values 32 -track-spread)

json_field() { # json_field <url> <field>
    curl -fsS "$1" | sed -n "s/.*\"$2\":\([0-9]*\).*/\1/p"
}

echo "== baseline: uninterrupted solo run"
"$tmp/faultserve" -role solo "${SPEC[@]}" -out "$tmp/solo.json"

echo "== phase 1: coordinator + 2 workers, then SIGKILL the coordinator"
"$tmp/faultserve" -role coordinator "${SPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/addr" -checkpoint "$tmp/ckpt" \
    -lease-ttl 2s -out "$tmp/unreached.json" &
coord=$!
for _ in $(seq 100); do [ -s "$tmp/addr" ] && break; sleep 0.1; done
base="http://$(cat "$tmp/addr")"

# Worker A completes 3 shards, takes a 4th lease and exits the way SIGKILL
# would (no report, no heartbeat); worker B completes 2 shards cleanly.
"$tmp/faultserve" -role worker -join "$base" -crash-after 3 || true
"$tmp/faultserve" -role worker -join "$base" -max-leases 2

done_shards=$(json_field "$base/v1/status" completed_shards)
echo "   $done_shards/8 shards checkpointed"
[ "$done_shards" -eq 5 ] || { echo "FAIL: expected 5 completed shards"; exit 1; }
kill -9 "$coord"
wait "$coord" 2>/dev/null || true

echo "== phase 2: resume from checkpoint, finish with 2 workers"
"$tmp/faultserve" -role coordinator "${SPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/addr2" -checkpoint "$tmp/ckpt" \
    -lease-ttl 2s -linger 2s -out "$tmp/resumed.json" &
coord2=$!
for _ in $(seq 100); do [ -s "$tmp/addr2" ] && break; sleep 0.1; done
base2="http://$(cat "$tmp/addr2")"

resumed=$(json_field "$base2/v1/status" resumed_shards)
echo "   coordinator resumed $resumed shards without re-running them"
[ "$resumed" -eq 5 ] || { echo "FAIL: expected 5 resumed shards"; exit 1; }

"$tmp/faultserve" -role worker -join "$base2" -golden-dir "$tmp/goldens" &
"$tmp/faultserve" -role worker -join "$base2" -golden-dir "$tmp/goldens" &
wait "$coord2"

echo "== compare resumed-distributed report against the solo baseline"
if ! cmp -s "$tmp/solo.json" "$tmp/resumed.json"; then
    echo "FAIL: resumed distributed report differs from solo run"
    diff "$tmp/solo.json" "$tmp/resumed.json" | head -20
    exit 1
fi
echo "OK: resume re-ran only unfinished shards and merged bit-identical to solo"

echo "== buffer leg: stratified Eyeriss buffer campaign, crash + resume"
BSPEC=(-surface buffer -buffer global -net ConvNet -dtype 16b_rb10 -n 120 -inputs 2 -seed 11 -shards 6 -sampling stratified)

"$tmp/faultserve" -role solo "${BSPEC[@]}" \
    -out "$tmp/bsolo.json" -strata-out "$tmp/bsolo.strata.json"

"$tmp/faultserve" -role coordinator "${BSPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/baddr" -checkpoint "$tmp/bckpt" \
    -lease-ttl 2s -out "$tmp/bunreached.json" &
bcoord=$!
for _ in $(seq 100); do [ -s "$tmp/baddr" ] && break; sleep 0.1; done
bbase="http://$(cat "$tmp/baddr")"

# The worker finishes 2 of the 6 pilot slots, takes a third lease and dies
# hard; then the coordinator itself is SIGKILLed mid-campaign.
"$tmp/faultserve" -role worker -join "$bbase" -crash-after 2 || true
bdone=$(json_field "$bbase/v1/status" completed_shards)
echo "   $bdone/12 buffer slots checkpointed"
[ "$bdone" -eq 2 ] || { echo "FAIL: expected 2 completed buffer slots"; exit 1; }
kill -9 "$bcoord"
wait "$bcoord" 2>/dev/null || true

"$tmp/faultserve" -role coordinator "${BSPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/baddr2" -checkpoint "$tmp/bckpt" \
    -lease-ttl 2s -linger 2s -out "$tmp/bresumed.json" &
bcoord2=$!
for _ in $(seq 100); do [ -s "$tmp/baddr2" ] && break; sleep 0.1; done
bbase2="http://$(cat "$tmp/baddr2")"

bresumed=$(json_field "$bbase2/v1/status" resumed_shards)
echo "   coordinator resumed $bresumed buffer slots without re-running them"
[ "$bresumed" -eq 2 ] || { echo "FAIL: expected 2 resumed buffer slots"; exit 1; }

"$tmp/faultserve" -role worker -join "$bbase2" &
"$tmp/faultserve" -role worker -join "$bbase2" &
wait "$bcoord2"

if ! cmp -s "$tmp/bsolo.json" "$tmp/bresumed.json"; then
    echo "FAIL: resumed distributed buffer report differs from solo eyeriss run"
    diff "$tmp/bsolo.json" "$tmp/bresumed.json" | head -20
    exit 1
fi
echo "OK: buffer campaign resumed and merged bit-identical to solo"

echo "== prior-seeded buffer campaign (pilot-free) distributed vs solo"
"$tmp/faultserve" -role solo "${BSPEC[@]}" -prior "$tmp/bsolo.strata.json" \
    -out "$tmp/psolo.json"

"$tmp/faultserve" -role coordinator "${BSPEC[@]}" -prior "$tmp/bsolo.strata.json" \
    -addr 127.0.0.1:0 -addr-file "$tmp/paddr" -linger 2s -out "$tmp/pdist.json" &
pcoord=$!
for _ in $(seq 100); do [ -s "$tmp/paddr" ] && break; sleep 0.1; done
"$tmp/faultserve" -role worker -join "http://$(cat "$tmp/paddr")"
wait "$pcoord"

if ! cmp -s "$tmp/psolo.json" "$tmp/pdist.json"; then
    echo "FAIL: prior-seeded distributed buffer report differs from solo"
    diff "$tmp/psolo.json" "$tmp/pdist.json" | head -20
    exit 1
fi
echo "OK: prior-seeded allocation reproduced bit-identically over the fleet"

echo "== systolic leg: stratified weight-stationary MBU campaign, crash + resume"
SSPEC=(-surface systolic -net ConvNet -dtype 16b_rb10 -n 120 -inputs 2 -seed 12 -shards 6 -sampling stratified -mbu 3)

"$tmp/faultserve" -role solo "${SSPEC[@]}" -out "$tmp/ssolo.json"

"$tmp/faultserve" -role coordinator "${SSPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/saddr" -checkpoint "$tmp/sckpt" \
    -lease-ttl 2s -out "$tmp/sunreached.json" &
scoord=$!
for _ in $(seq 100); do [ -s "$tmp/saddr" ] && break; sleep 0.1; done
sbase="http://$(cat "$tmp/saddr")"

# The worker finishes 2 of the 6 pilot slots, takes a third lease and dies
# hard; then the coordinator itself is SIGKILLed mid-campaign, before the
# pilot->allocation boundary.
"$tmp/faultserve" -role worker -join "$sbase" -crash-after 2 || true
sdone=$(json_field "$sbase/v1/status" completed_shards)
echo "   $sdone/12 systolic slots checkpointed"
[ "$sdone" -eq 2 ] || { echo "FAIL: expected 2 completed systolic slots"; exit 1; }
kill -9 "$scoord"
wait "$scoord" 2>/dev/null || true

"$tmp/faultserve" -role coordinator "${SSPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/saddr2" -checkpoint "$tmp/sckpt" \
    -lease-ttl 2s -linger 2s -out "$tmp/sresumed.json" &
scoord2=$!
for _ in $(seq 100); do [ -s "$tmp/saddr2" ] && break; sleep 0.1; done
sbase2="http://$(cat "$tmp/saddr2")"

sresumed=$(json_field "$sbase2/v1/status" resumed_shards)
echo "   coordinator resumed $sresumed systolic slots without re-running them"
[ "$sresumed" -eq 2 ] || { echo "FAIL: expected 2 resumed systolic slots"; exit 1; }

"$tmp/faultserve" -role worker -join "$sbase2" &
"$tmp/faultserve" -role worker -join "$sbase2" &
wait "$scoord2"

if ! cmp -s "$tmp/ssolo.json" "$tmp/sresumed.json"; then
    echo "FAIL: resumed distributed systolic report differs from solo run"
    diff "$tmp/ssolo.json" "$tmp/sresumed.json" | head -20
    exit 1
fi
echo "OK: systolic campaign resumed across the pilot boundary bit-identical to solo"

echo "== output-stationary leg: stratified systolic dataflow campaign, crash + resume"
OSPEC=(-surface systolic -dataflow output -net ConvNet -dtype 16b_rb10 -n 120 -inputs 2 -seed 13 -shards 6 -sampling stratified -mbu 3)

"$tmp/faultserve" -role solo "${OSPEC[@]}" -out "$tmp/osolo.json"

"$tmp/faultserve" -role coordinator "${OSPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/oaddr" -checkpoint "$tmp/ockpt" \
    -lease-ttl 2s -out "$tmp/ounreached.json" &
ocoord=$!
for _ in $(seq 100); do [ -s "$tmp/oaddr" ] && break; sleep 0.1; done
obase="http://$(cat "$tmp/oaddr")"

# Same drill as the weight-stationary leg: the worker dies hard holding its
# third pilot lease, then the coordinator is SIGKILLed before the
# pilot->allocation boundary.
"$tmp/faultserve" -role worker -join "$obase" -crash-after 2 || true
odone=$(json_field "$obase/v1/status" completed_shards)
echo "   $odone/12 output-stationary slots checkpointed"
[ "$odone" -eq 2 ] || { echo "FAIL: expected 2 completed output-stationary slots"; exit 1; }
kill -9 "$ocoord"
wait "$ocoord" 2>/dev/null || true

"$tmp/faultserve" -role coordinator "${OSPEC[@]}" \
    -addr 127.0.0.1:0 -addr-file "$tmp/oaddr2" -checkpoint "$tmp/ockpt" \
    -lease-ttl 2s -linger 2s -out "$tmp/oresumed.json" &
ocoord2=$!
for _ in $(seq 100); do [ -s "$tmp/oaddr2" ] && break; sleep 0.1; done
obase2="http://$(cat "$tmp/oaddr2")"

oresumed=$(json_field "$obase2/v1/status" resumed_shards)
echo "   coordinator resumed $oresumed output-stationary slots without re-running them"
[ "$oresumed" -eq 2 ] || { echo "FAIL: expected 2 resumed output-stationary slots"; exit 1; }

"$tmp/faultserve" -role worker -join "$obase2" &
"$tmp/faultserve" -role worker -join "$obase2" &
wait "$ocoord2"

if ! cmp -s "$tmp/osolo.json" "$tmp/oresumed.json"; then
    echo "FAIL: resumed distributed output-stationary report differs from solo run"
    diff "$tmp/osolo.json" "$tmp/oresumed.json" | head -20
    exit 1
fi
echo "OK: output-stationary campaign resumed across the pilot boundary bit-identical to solo"

echo "== control-plane leg: two tenants, one fleet, SIGKILL + journal resume"
ASPEC=(-net ConvNet -dtype FLOAT16 -n 160 -inputs 2 -seed 21 -shards 4 -sampling stratified)
CSPEC=(-net ConvNet -dtype FLOAT16 -n 120 -inputs 2 -seed 22 -shards 4)

"$tmp/faultserve" -role solo "${ASPEC[@]}" -out "$tmp/a_solo.json"
"$tmp/faultserve" -role solo "${CSPEC[@]}" -out "$tmp/c_solo.json"

printf '# smoke tenants\nalice:secret-a\nbob:secret-b\nfleet:secret-f\n' > "$tmp/keys"
atok=$("$tmp/faultserve" -role token -tenant-keys "$tmp/keys" -tenant alice)
btok=$("$tmp/faultserve" -role token -tenant-keys "$tmp/keys" -tenant bob)
ftok=$("$tmp/faultserve" -role token -tenant-keys "$tmp/keys" -tenant fleet)

"$tmp/faultserve" -role ctl -addr 127.0.0.1:0 -addr-file "$tmp/caddr" \
    -journal "$tmp/ctl.journal" -tenant-keys "$tmp/keys" -lease-ttl 2s &
ctl=$!
for _ in $(seq 100); do [ -s "$tmp/caddr" ] && break; sleep 0.1; done
cbase="http://$(cat "$tmp/caddr")"

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$cbase/v1/campaigns" -d '{}')
[ "$code" = 401 ] || { echo "FAIL: tokenless submit got $code, want 401"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$cbase/v1/lease" \
    -H "Authorization: Bearer alice.deadbeef" -d '{}')
[ "$code" = 401 ] || { echo "FAIL: forged-token lease got $code, want 401"; exit 1; }
echo "   401 without a valid bearer token"

# Role separation: a tenant's token must not reach the fleet routes (it
# could pull other tenants' specs or forge reports), and the fleet token
# must not reach the campaign routes.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$cbase/v1/lease" \
    -H "Authorization: Bearer $atok" -d '{}')
[ "$code" = 403 ] || { echo "FAIL: tenant-token lease got $code, want 403"; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' "$cbase/v1/campaigns" \
    -H "Authorization: Bearer $ftok")
[ "$code" = 403 ] || { echo "FAIL: fleet-token listing got $code, want 403"; exit 1; }
echo "   403 across the tenant/fleet role boundary"

aid=$("$tmp/faultserve" -role submit -join "$cbase" -token "$atok" "${ASPEC[@]}" -priority 4)
cid=$("$tmp/faultserve" -role submit -join "$cbase" -token "$btok" "${CSPEC[@]}" -priority 1)

# Tenant isolation on reads: bob cannot see alice's campaign.
code=$(curl -s -o /dev/null -w '%{http_code}' "$cbase/v1/campaigns/$aid" \
    -H "Authorization: Bearer $btok")
[ "$code" = 403 ] || { echo "FAIL: cross-tenant read got $code, want 403"; exit 1; }
echo "   403 reading another tenant's campaign"

# A short-lived worker completes 3 slots of the interleaved queue — for the
# priority-4 stratified campaign that is most of its pilot phase — then the
# control plane is SIGKILLed mid-run.
"$tmp/faultserve" -role worker -join "$cbase" -token "$ftok" -max-leases 3
kill -9 "$ctl"
wait "$ctl" 2>/dev/null || true

# Resume on the same address from the journal; the stratified campaign
# crosses its pilot->allocation boundary on the resumed plane.
"$tmp/faultserve" -role ctl -addr "$(cat "$tmp/caddr")" \
    -journal "$tmp/ctl.journal" -tenant-keys "$tmp/keys" -lease-ttl 2s &
ctl2=$!
sleep 0.3

"$tmp/faultserve" -role worker -join "$cbase" -token "$ftok" &
wk1=$!
"$tmp/faultserve" -role worker -join "$cbase" -token "$ftok" &
wk2=$!

"$tmp/faultserve" -role watch -join "$cbase" -token "$atok" -campaign "$aid" \
    -out "$tmp/a_ctl.json" > /dev/null
"$tmp/faultserve" -role watch -join "$cbase" -token "$btok" -campaign "$cid" \
    -out "$tmp/c_ctl.json" > /dev/null

states=$("$tmp/faultserve" -role list -join "$cbase" -token "$atok" \
    | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p' | sort -u)
[ "$states" = done ] || { echo "FAIL: campaign states after resume: $states"; exit 1; }

if ! cmp -s "$tmp/a_solo.json" "$tmp/a_ctl.json"; then
    echo "FAIL: tenant A report differs from its solo run"
    diff "$tmp/a_solo.json" "$tmp/a_ctl.json" | head -20
    exit 1
fi
if ! cmp -s "$tmp/c_solo.json" "$tmp/c_ctl.json"; then
    echo "FAIL: tenant B report differs from its solo run"
    diff "$tmp/c_solo.json" "$tmp/c_ctl.json" | head -20
    exit 1
fi
echo "OK: both tenants' shared-fleet reports byte-equal their solo runs across the kill"

# Graceful drain: SIGTERM must let each worker finish and exit 0.
kill -TERM "$wk1" "$wk2"
wait "$wk1" || { echo "FAIL: worker 1 did not drain cleanly"; exit 1; }
wait "$wk2" || { echo "FAIL: worker 2 did not drain cleanly"; exit 1; }
echo "OK: workers drained cleanly on SIGTERM"
kill -TERM "$ctl2"
wait "$ctl2" 2>/dev/null || true

echo "== compaction leg: snapshot retirement + batched leases + SIGKILL after compaction"
DSPEC=(-net ConvNet -dtype FLOAT16 -n 120 -inputs 2 -seed 23 -shards 4)
"$tmp/faultserve" -role solo "${DSPEC[@]}" -out "$tmp/d_solo.json"

# Restart the settled plane (journal holds both finished campaigns' full
# event history) with a small threshold: load-time compaction rewrites
# the journal as a snapshot, retiring the terminal campaigns' events.
size_before=$(stat -c%s "$tmp/ctl.journal")
"$tmp/faultserve" -role ctl -addr 127.0.0.1:0 -addr-file "$tmp/caddr3" \
    -journal "$tmp/ctl.journal" -tenant-keys "$tmp/keys" -lease-ttl 2s \
    -compact-bytes 2048 &
ctl3=$!
for _ in $(seq 100); do [ -s "$tmp/caddr3" ] && break; sleep 0.1; done
cbase3="http://$(cat "$tmp/caddr3")"
size_after=$(stat -c%s "$tmp/ctl.journal")
echo "   journal $size_before B -> $size_after B after load-time compaction"
[ "$size_after" -lt "$size_before" ] || { echo "FAIL: load compaction did not shrink the journal"; exit 1; }
# Retired campaigns stay queryable until the next restart...
states=$("$tmp/faultserve" -role list -join "$cbase3" -token "$atok" \
    | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p' | sort -u)
[ "$states" = done ] || { echo "FAIL: finished campaign unqueryable in compacting session: '$states'"; exit 1; }
kill -TERM "$ctl3"
wait "$ctl3" 2>/dev/null || true

# ...and are gone after it: the journal is bounded by live-campaign state.
"$tmp/faultserve" -role ctl -addr 127.0.0.1:0 -addr-file "$tmp/caddr4" \
    -journal "$tmp/ctl.journal" -tenant-keys "$tmp/keys" -lease-ttl 2s \
    -compact-bytes 2048 &
ctl4=$!
for _ in $(seq 100); do [ -s "$tmp/caddr4" ] && break; sleep 0.1; done
cbase4="http://$(cat "$tmp/caddr4")"
leftovers=$({ "$tmp/faultserve" -role list -join "$cbase4" -token "$atok"; \
    "$tmp/faultserve" -role list -join "$cbase4" -token "$btok"; } | wc -l)
[ "$leftovers" -eq 0 ] || { echo "FAIL: $leftovers retired campaigns survived the restart"; exit 1; }
echo "OK: terminal campaigns retired from the compacted journal"

# New campaign: a batched-lease worker (prefetch pipeline, max=N lease
# grants, /v1/reports delivery) completes half the shards; the growing
# event tail crosses -compact-bytes, so the plane compacts mid-run.
did=$("$tmp/faultserve" -role submit -join "$cbase4" -token "$btok" "${DSPEC[@]}")
"$tmp/faultserve" -role worker -join "$cbase4" -token "$ftok" -prefetch 4 -max-leases 2
compactions=0
for _ in $(seq 50); do
    compactions=$(curl -fsS "$cbase4/debug/vars" \
        | sed -n 's/.*"compactions": \([0-9]*\).*/\1/p')
    [ "${compactions:-0}" -ge 1 ] && break
    sleep 0.1
done
[ "${compactions:-0}" -ge 1 ] || { echo "FAIL: no size-triggered compaction during the campaign"; exit 1; }
echo "   $compactions size-triggered compaction(s) mid-campaign"

# SIGKILL with the compaction churn still warm: recovery must land on
# either the old or the new journal — never a hybrid — and keep the two
# finished shards.
kill -9 "$ctl4"
wait "$ctl4" 2>/dev/null || true
"$tmp/faultserve" -role ctl -addr "$(cat "$tmp/caddr4")" \
    -journal "$tmp/ctl.journal" -tenant-keys "$tmp/keys" -lease-ttl 2s \
    -compact-bytes 2048 &
ctl5=$!
sleep 0.3
resumed_done=$("$tmp/faultserve" -role list -join "$cbase4" -token "$btok" \
    | sed -n 's/.*"completed_shards":\([0-9]*\).*/\1/p')
[ "$resumed_done" = 2 ] || { echo "FAIL: resumed $resumed_done/4 shards, want 2"; exit 1; }
echo "   resumed with 2/4 shards after SIGKILL"

"$tmp/faultserve" -role worker -join "$cbase4" -token "$ftok" -prefetch 4 &
wk3=$!
"$tmp/faultserve" -role watch -join "$cbase4" -token "$btok" -campaign "$did" \
    -out "$tmp/d_ctl.json" > /dev/null
if ! cmp -s "$tmp/d_solo.json" "$tmp/d_ctl.json"; then
    echo "FAIL: batched-lease report differs from solo across compaction + SIGKILL"
    diff "$tmp/d_solo.json" "$tmp/d_ctl.json" | head -20
    exit 1
fi
echo "OK: compacted + killed + resumed campaign merged bit-identical to solo"
kill -TERM "$wk3"
wait "$wk3" || { echo "FAIL: batched worker did not drain cleanly"; exit 1; }
kill -TERM "$ctl5"
wait "$ctl5" 2>/dev/null || true
