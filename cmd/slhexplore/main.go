// Command slhexplore runs the Selective Latch Hardening design-space
// exploration (§6.3): it measures the per-bit SDC FIT sensitivity of a
// network/format pair (Figure 4), prints the hardened latch design space
// (Table 9), the protection curve asymmetry β (Figure 9a) and the area
// overhead required to reach each FIT-reduction target with RCC, SEUT, TMR
// and the cost-optimal Multi combination (Figures 9b/9c).
//
// Usage:
//
//	slhexplore -net AlexNet -dtype FLOAT16 -n 3000
//	slhexplore -net AlexNet -dtype 16b_rb10 -n 3000
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/numeric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("slhexplore: ")

	netName := flag.String("net", "AlexNet", "network: ConvNet, AlexNet, CaffeNet or NiN")
	dtypeName := flag.String("dtype", "FLOAT16", "data type")
	n := flag.Int("n", 3000, "total injections across bit positions")
	inputs := flag.Int("inputs", 4, "number of distinct input images")
	seed := flag.Int64("seed", 1, "campaign seed")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output); empty = calibrated synthetic weights")
	flag.Parse()

	dt, err := numeric.ParseType(*dtypeName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{Injections: *n, Inputs: *inputs, Seed: *seed, WeightsDir: *weightsDir}

	fmt.Println("Hardened latch design space (Table 9):")
	fmt.Print(core.FormatTable9(core.Table9()))
	fmt.Println()
	res := core.Fig9(cfg, *netName, dt)
	fmt.Print(res.Format())
	fmt.Println()
	fmt.Println("Perfect-protection curve (Fig. 9a):")
	for i := range res.CurveX {
		fmt.Printf("  protect %5.1f%% of latches -> remove %5.1f%% of FIT\n",
			res.CurveX[i]*100, res.CurveY[i]*100)
	}
}
