// Plane-mode benchmark: sustained control-plane throughput — submits/s,
// leases/s and reports/s — of the group-commit journal against the
// fsync-per-append baseline (the v4 durability policy), plus one
// snapshot-compaction measurement. An in-process goroutine fleet drives
// the exported batch APIs (Plane.LeaseBatch / Plane.ReportBatch, the
// same code paths the HTTP routes call) with fabricated shard reports,
// so the figures isolate control-plane cost — scheduler, ledger, journal
// durability — rather than HTTP framing or injection compute.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/controlplane"
	"repro/internal/faultinj"
)

// planeBatch is how many leases ride one batched call — the pipelined
// worker's Procs+Prefetch depth at typical settings.
const planeBatch = 8

// reportBatchSize is how many reports ride one delivery call. A fleet
// aggregator (or a wide worker) delivers more than it leases per
// roundtrip because finished shards queue while a delivery is in
// flight; this is also where group commit earns its amortization.
const reportBatchSize = 32

// planeCampaigns is how many campaigns the shard budget is spread over,
// sized to keep the DRR ring realistically multi-tenant while still
// giving each campaign enough shards to matter.
const planeCampaigns = 64

// PlaneResult is one journal policy's throughput measurement.
type PlaneResult struct {
	Journal       string  `json:"journal"` // "group_commit" or "fsync_per_append"
	Campaigns     int     `json:"campaigns"`
	Shards        int     `json:"shards"`
	SubmitsPerSec float64 `json:"submits_per_sec"`
	LeasesPerSec  float64 `json:"leases_per_sec"`
	ReportsPerSec float64 `json:"reports_per_sec"`
	// Batches/Fsyncs are the committer's counters over the run;
	// EventsPerFsync is the realized group-commit amortization (1.0 for
	// the baseline by construction).
	Batches        int64   `json:"batches"`
	Fsyncs         int64   `json:"fsyncs"`
	EventsPerFsync float64 `json:"events_per_fsync"`
	MeanFsyncMS    float64 `json:"mean_fsync_ms"`
	JournalBytes   int64   `json:"journal_bytes"`
}

// PlaneCompaction records the snapshot-compaction measurement: a journal
// holding the fully terminal benchmark campaigns plus one half-done live
// campaign is compacted, and the rewritten file must be bounded by the
// live campaign's state (submit + done-slot reports), with every
// terminal event retired.
type PlaneCompaction struct {
	BytesBefore   int64 `json:"journal_bytes_before"`
	BytesAfter    int64 `json:"journal_bytes_after"`
	EventsRetired int64 `json:"events_retired"`
	LiveSlotsDone int   `json:"live_slots_done"`
}

// PlaneOutput is the BENCH_8.json document.
type PlaneOutput struct {
	Benchmark string        `json:"benchmark"`
	Date      string        `json:"date"`
	Workers   int           `json:"workers"`
	Results   []PlaneResult `json:"results"`
	// ReportIngestSpeedup is group-commit reports/sec over the
	// fsync-per-append baseline — the acceptance figure (want >= 5).
	ReportIngestSpeedup float64         `json:"report_ingest_speedup"`
	Compaction          PlaneCompaction `json:"compaction"`
}

// benchSpec is one benchmark campaign: datapath surface so fabricated
// reports are cheap to build, one injection per shard so the shard count
// equals the report count.
func benchSpec(shards int, seed int64) campaign.Spec {
	return campaign.Spec{
		Net: "ConvNet", DType: "FLOAT16", N: shards, Inputs: 1, Seed: seed,
		Shards: shards,
	}
}

// fabricatedReport builds a wire-valid datapath shard report without
// running any injections — the same shape journal replay validates.
func fabricatedReport(spec campaign.Spec) *campaign.Report {
	return &campaign.Report{Datapath: faultinj.NewReport(spec.Type().Width(), 3)}
}

// measurePlane stands up one plane with the given journal policy and
// times three fleet phases over n total shards spread across
// planeCampaigns campaigns: concurrent submits, then leasing every shard
// in planeBatch grants, then delivering every report in planeBatch
// batches. The returned plane is still open (journal intact) so the
// caller can run the compaction leg on it.
func measurePlane(dir string, n, workers int, perAppend bool) (PlaneResult, *controlplane.Plane) {
	name := "group_commit"
	if perAppend {
		name = "fsync_per_append"
	}
	p, err := controlplane.New(controlplane.Config{
		JournalPath:    filepath.Join(dir, name+".journal"),
		LeaseTTL:       5 * time.Minute, // the fleet never heartbeats
		FsyncPerAppend: perAppend,
	})
	if err != nil {
		log.Fatal(err)
	}

	perCampaign := n / planeCampaigns
	if perCampaign < 1 {
		perCampaign = 1
	}
	total := perCampaign * planeCampaigns

	// Phase 1: concurrent submits (one journal event each).
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1)
				if i > planeCampaigns {
					return
				}
				if _, err := p.Submit("bench", benchSpec(perCampaign, i), 1, 0); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	submitElapsed := time.Since(start)

	// Phase 2: lease every shard. Grants mutate only in-memory scheduler
	// state (no journal write), so this isolates the dispatch fast-path.
	// Each goroutine keeps the leases it won for the report phase.
	leased := make([][]*campaign.Lease, workers)
	var granted atomic.Int64
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				resp := p.LeaseBatch(time.Now(), planeBatch)
				if len(resp.Leases) == 0 {
					if granted.Load() >= int64(total) {
						return
					}
					continue
				}
				leased[w] = append(leased[w], resp.Leases...)
				granted.Add(int64(len(resp.Leases)))
			}
		}(w)
	}
	wg.Wait()
	leaseElapsed := time.Since(start)

	// Phase 3: deliver every report in batched calls — the acceptance
	// figure. Each report is one journal event; under group commit a
	// batch shares (at most) one fsync, under the baseline each pays its
	// own. The request bodies are built before the clock starts: shard
	// execution (here, fabrication) is fleet work, and the measurement is
	// the plane's ingest cost alone.
	batches := make([][][]campaign.ReportRequest, workers)
	for w := range leased {
		mine := leased[w]
		for len(mine) > 0 {
			k := min(reportBatchSize, len(mine))
			reqs := make([]campaign.ReportRequest, k)
			for i, l := range mine[:k] {
				reqs[i] = campaign.ReportRequest{
					Campaign: l.Campaign, LeaseID: l.ID, Shard: l.Slot,
					Report: fabricatedReport(l.Spec),
				}
			}
			batches[w] = append(batches[w], reqs)
			mine = mine[k:]
		}
	}
	start = time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, reqs := range batches[w] {
				for i, err := range p.ReportBatch(reqs) {
					if err != nil {
						log.Fatalf("report %s/%d refused: %v", reqs[i].Campaign, reqs[i].Shard, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	reportElapsed := time.Since(start)

	st := p.JournalStats()
	res := PlaneResult{
		Journal: name, Campaigns: planeCampaigns, Shards: total,
		SubmitsPerSec: round2(float64(planeCampaigns) / submitElapsed.Seconds()),
		LeasesPerSec:  round2(float64(total) / leaseElapsed.Seconds()),
		ReportsPerSec: round2(float64(total) / reportElapsed.Seconds()),
		Batches:       st.Batches,
		Fsyncs:        st.Fsyncs,
		JournalBytes:  st.Bytes,
	}
	if st.Fsyncs > 0 {
		res.EventsPerFsync = round2(float64(st.Events) / float64(st.Fsyncs))
		res.MeanFsyncMS = math.Round(float64(st.FsyncNanos)/float64(st.Fsyncs)/1e3) / 1e3
	}
	return res, p
}

// measureCompaction reuses the group-commit plane (its journal now holds
// the benchmark campaigns' full terminal history), adds a half-finished
// live campaign, and compacts: terminal events must retire and the
// rewritten journal must shrink to the live campaign's state. Driven by
// one goroutine with an exact budget so the live campaign cannot
// accidentally finish.
func measureCompaction(p *controlplane.Plane) PlaneCompaction {
	const liveShards = 64
	if _, err := p.Submit("bench", benchSpec(liveShards, 9999), 1, 0); err != nil {
		log.Fatal(err)
	}
	done := 0
	for done < liveShards/2 {
		resp := p.LeaseBatch(time.Now(), min(planeBatch, liveShards/2-done))
		if len(resp.Leases) == 0 {
			log.Fatal("compaction leg: no leases for live campaign")
		}
		reqs := make([]campaign.ReportRequest, len(resp.Leases))
		for i, l := range resp.Leases {
			reqs[i] = campaign.ReportRequest{
				Campaign: l.Campaign, LeaseID: l.ID, Shard: l.Slot,
				Report: fabricatedReport(l.Spec),
			}
		}
		for _, err := range p.ReportBatch(reqs) {
			if err != nil {
				log.Fatal(err)
			}
		}
		done += len(reqs)
	}

	retiredBefore := p.JournalStats().RetiredEvents
	before := p.JournalStats().Bytes
	if err := p.Compact(); err != nil {
		log.Fatal(err)
	}
	after := p.JournalStats()
	return PlaneCompaction{
		BytesBefore:   before,
		BytesAfter:    after.Bytes,
		EventsRetired: after.RetiredEvents - retiredBefore,
		LiveSlotsDone: done,
	}
}

// runPlane writes the BENCH_8.json control-plane ingest document.
func runPlane(n, workers int, out, date string) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers < 4 {
		// Group commit coalesces *concurrent* appends; a fleet needs a few
		// goroutines in flight even on small machines for the measurement
		// to exercise it.
		workers = 4
	}
	dir, err := os.MkdirTemp("", "benchtrack-plane-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}

	doc := PlaneOutput{Benchmark: "PlaneIngest", Date: date, Workers: workers}

	baseRes, basePlane := measurePlane(dir, n, workers, true)
	basePlane.Close()
	groupRes, groupPlane := measurePlane(dir, n, workers, false)
	for _, r := range []PlaneResult{baseRes, groupRes} {
		fmt.Printf("%-16s %8.1f submits/s   %9.1f leases/s   %9.1f reports/s   %5.1f events/fsync   fsync %6.3fms\n",
			r.Journal, r.SubmitsPerSec, r.LeasesPerSec, r.ReportsPerSec, r.EventsPerFsync, r.MeanFsyncMS)
	}

	doc.Results = append(doc.Results, groupRes, baseRes)
	if baseRes.ReportsPerSec > 0 {
		doc.ReportIngestSpeedup = round2(groupRes.ReportsPerSec / baseRes.ReportsPerSec)
	}

	doc.Compaction = measureCompaction(groupPlane)
	groupPlane.Close()
	fmt.Printf("compaction: %d B -> %d B (%d events retired, live campaign %d slots done)\n",
		doc.Compaction.BytesBefore, doc.Compaction.BytesAfter,
		doc.Compaction.EventsRetired, doc.Compaction.LiveSlotsDone)
	fmt.Printf("report ingest speedup: %.2fx\n", doc.ReportIngestSpeedup)

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}
