// Command benchtrack measures the fault-injection campaign throughput of
// the incremental propagation engine (network.ForwardFrom with delta
// recompute, masked-fault early exit and the quantized-parameter cache)
// against the dense per-layer re-execution baseline, and records the
// numbers as JSON for regression tracking.
//
// Usage:
//
//	benchtrack -n 2000 -o BENCH_1.json
//	benchtrack -n 2000 -baseline BENCH_1.json -o BENCH_3.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/faultinj"
	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/tensor"
)

// Result is one (network, dtype) throughput comparison.
type Result struct {
	Network          string  `json:"network"`
	DType            string  `json:"dtype"`
	Injections       int     `json:"injections"`
	MaskedFrac       float64 `json:"masked_fraction"`
	IncrementalInjPS float64 `json:"incremental_inj_per_sec"`
	DenseInjPS       float64 `json:"dense_inj_per_sec"`
	Speedup          float64 `json:"speedup"`
	// VsBaseline is this run's incremental throughput over the baseline
	// document's incremental throughput for the same (network, dtype)
	// cell; omitted when no baseline was given or it lacks the cell.
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// Output is the BENCH_1.json document.
type Output struct {
	Benchmark string   `json:"benchmark"`
	Date      string   `json:"date"`
	Workers   int      `json:"workers"`
	// Baseline names the document the vs_baseline ratios compare against.
	Baseline string   `json:"baseline,omitempty"`
	Results  []Result `json:"results"`
	// MeanSpeedup is the geometric mean over Results.
	MeanSpeedup float64 `json:"mean_speedup"`
	// ConvNetMeanSpeedup is the geometric mean over the ConvNet rows only
	// — the per-format acceptance figure.
	ConvNetMeanSpeedup float64 `json:"convnet_mean_speedup,omitempty"`
}

// measure runs one campaign mode on a fresh network and returns
// injections per second. The golden pass and site profile are computed
// before timing starts, so the figure isolates per-injection cost.
func measure(name string, dt numeric.Type, n, workers int, dense bool) (injPerSec, maskedFrac float64) {
	net := models.Build(name)
	in := models.InputFor(name, 0)
	c := faultinj.New(net, dt, []*tensor.Tensor{in})
	c.Golden(0)
	opt := faultinj.Options{N: n, Seed: 1, Workers: workers, Dense: dense}
	start := time.Now()
	r := c.Run(opt)
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), float64(r.Masked) / float64(n)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtrack: ")

	n := flag.Int("n", 2000, "injections per campaign")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	out := flag.String("o", "BENCH_1.json", "output JSON path")
	baseline := flag.String("baseline", "", "earlier benchtrack JSON to compute vs_baseline throughput ratios against")
	date := flag.String("date", "", "date stamp to embed (default: today)")
	flag.Parse()

	if *n <= 0 {
		log.Fatal("-n must be positive")
	}
	// baseInjPS maps (network, dtype) to the baseline document's
	// incremental throughput.
	baseInjPS := map[string]float64{}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base Output
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("decoding %s: %v", *baseline, err)
		}
		for _, r := range base.Results {
			baseInjPS[r.Network+"/"+r.DType] = r.IncrementalInjPS
		}
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}
	// Open the output before the (long) measurement phase so a bad path
	// fails in milliseconds, not minutes.
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}

	doc := Output{Benchmark: "CampaignThroughput", Date: *date, Workers: *workers, Baseline: *baseline}
	// AlexNet keeps the two formats BENCH_1 measured (so vs_baseline is
	// meaningful); ConvNet sweeps every numeric format — the acceptance
	// figure for sparse downstream propagation is per-format, not just
	// FLOAT16.
	matrix := []struct {
		name string
		dts  []numeric.Type
	}{
		{"AlexNet", []numeric.Type{numeric.Float16, numeric.Fx32RB10}},
		{"ConvNet", numeric.Types},
	}
	logSpeedup, logConv, nConv := 0.0, 0.0, 0
	for _, row := range matrix {
		for _, dt := range row.dts {
			// Dense first so the incremental run cannot inherit a warm cache
			// indirectly; each mode gets its own fresh network anyway.
			dense, _ := measure(row.name, dt, *n, *workers, true)
			inc, masked := measure(row.name, dt, *n, *workers, false)
			res := Result{
				Network: row.name, DType: dt.String(), Injections: *n,
				MaskedFrac:       round2(masked),
				IncrementalInjPS: round2(inc), DenseInjPS: round2(dense),
				Speedup: round2(inc / dense),
			}
			if b := baseInjPS[res.Network+"/"+res.DType]; b > 0 {
				res.VsBaseline = round2(inc / b)
			}
			doc.Results = append(doc.Results, res)
			logSpeedup += math.Log(inc / dense)
			if row.name == "ConvNet" {
				logConv += math.Log(inc / dense)
				nConv++
			}
			fmt.Printf("%-8s %-9s incremental %8.1f inj/s   dense %8.1f inj/s   speedup %5.2fx   masked %4.1f%%   vs-baseline %.2fx\n",
				row.name, dt, inc, dense, inc/dense, masked*100, res.VsBaseline)
		}
	}
	doc.MeanSpeedup = round2(math.Exp(logSpeedup / float64(len(doc.Results))))
	doc.ConvNetMeanSpeedup = round2(math.Exp(logConv / float64(nConv)))
	fmt.Printf("geomean speedup: %.2fx   ConvNet geomean: %.2fx\n", doc.MeanSpeedup, doc.ConvNetMeanSpeedup)

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
