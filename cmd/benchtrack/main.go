// Command benchtrack measures the fault-injection campaign throughput of
// the incremental propagation engine (network.ForwardFrom with delta
// recompute, masked-fault early exit and the quantized-parameter cache)
// against the dense per-layer re-execution baseline, and records the
// numbers as JSON for regression tracking.
//
// -mode sampling instead measures statistical efficiency: the SDC-1
// confidence-interval half-width of stratified vs uniform site sampling at
// an equal injection budget (the BENCH_4.json acceptance figure).
//
// -mode bitparallel measures the site-draw evaluation modes: legacy
// per-bit incremental injections vs the site-scalar reference vs the
// bit-plane fast path (one chain replay per site plus the analytical
// masking pre-screen), with vs_baseline ratios of bit-plane throughput
// over a baseline document's incremental throughput (the BENCH_6.json
// acceptance figure).
//
// -mode xarch compares the four PE-array dataflows at an equal FIT
// budget: the row-stationary datapath (internal/faultinj, the paper's
// Eyeriss abstraction) vs the weight-, output- and input-stationary
// systolic arrays (internal/systolic), all sized to the same 1344-PE,
// 4-latch exposed bit count — the equality is runtime-asserted at every
// word width, and any architecture that cannot meet the budget is logged
// and skipped — so the resulting FIT ratios isolate what the dataflow,
// not the area, does to error propagation (the BENCH_10.json acceptance
// figure).
//
// Usage:
//
//	benchtrack -n 2000 -o BENCH_1.json
//	benchtrack -n 2000 -baseline BENCH_1.json -o BENCH_3.json
//	benchtrack -mode sampling -n 3000 -o BENCH_4.json
//	benchtrack -mode bitparallel -n 4000 -baseline BENCH_3.json -o BENCH_6.json
//	benchtrack -mode xarch -n 3000 -o BENCH_10.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/engine"
	"repro/internal/eyeriss"
	"repro/internal/faultinj"
	"repro/internal/fit"
	"repro/internal/models"
	"repro/internal/network"
	"repro/internal/numeric"
	"repro/internal/sdc"
	"repro/internal/stats"
	"repro/internal/systolic"
	"repro/internal/tensor"
)

// Result is one (network, dtype) throughput comparison.
type Result struct {
	Network          string  `json:"network"`
	DType            string  `json:"dtype"`
	Injections       int     `json:"injections"`
	MaskedFrac       float64 `json:"masked_fraction"`
	IncrementalInjPS float64 `json:"incremental_inj_per_sec"`
	DenseInjPS       float64 `json:"dense_inj_per_sec"`
	Speedup          float64 `json:"speedup"`
	// VsBaseline is this run's incremental throughput over the baseline
	// document's incremental throughput for the same (network, dtype)
	// cell; omitted when no baseline was given or it lacks the cell.
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// Output is the BENCH_1.json document.
type Output struct {
	Benchmark string `json:"benchmark"`
	Date      string `json:"date"`
	Workers   int    `json:"workers"`
	// Baseline names the document the vs_baseline ratios compare against.
	Baseline string   `json:"baseline,omitempty"`
	Results  []Result `json:"results"`
	// MeanSpeedup is the geometric mean over Results.
	MeanSpeedup float64 `json:"mean_speedup"`
	// ConvNetMeanSpeedup is the geometric mean over the ConvNet rows only
	// — the per-format acceptance figure.
	ConvNetMeanSpeedup float64 `json:"convnet_mean_speedup,omitempty"`
}

// measure runs one campaign mode on a fresh network and returns
// injections per second. The golden pass and site profile are computed
// before timing starts, so the figure isolates per-injection cost.
func measure(name string, dt numeric.Type, n, workers int, dense bool) (injPerSec, maskedFrac float64) {
	net := models.Build(name)
	in := models.InputFor(name, 0)
	c := faultinj.New(net, dt, []*tensor.Tensor{in})
	c.Golden(0)
	opt := faultinj.Options{N: n, Seed: 1, Workers: workers, Dense: dense}
	start := time.Now()
	r := c.Run(opt)
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), float64(r.Masked) / float64(n)
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// SamplingResult is one (network, dtype) equal-budget comparison of the
// SDC-1 confidence interval under uniform vs stratified site sampling.
type SamplingResult struct {
	Network    string `json:"network"`
	DType      string `json:"dtype"`
	Injections int    `json:"injections"`
	PilotN     int    `json:"pilot_n"`
	// UniformSDC1/CI are the pooled estimate and 95% half-width of the
	// uniform campaign; StratifiedSDC1/CI the Horvitz–Thompson estimate and
	// half-width of the stratified campaign at the same total budget.
	UniformSDC1    float64 `json:"uniform_sdc1"`
	UniformCI      float64 `json:"uniform_ci95"`
	StratifiedSDC1 float64 `json:"stratified_sdc1"`
	StratifiedCI   float64 `json:"stratified_ci95"`
	// CIRatio is UniformCI / StratifiedCI — how many times narrower the
	// stratified interval is at equal budget.
	CIRatio float64 `json:"ci_ratio"`
}

// SamplingOutput is the BENCH_4.json document.
type SamplingOutput struct {
	Benchmark string           `json:"benchmark"`
	Date      string           `json:"date"`
	Workers   int              `json:"workers"`
	Results   []SamplingResult `json:"results"`
	// ConvNetMeanCIRatio is the geometric mean of CIRatio over the ConvNet
	// rows — the acceptance figure (want ≥ 1.5).
	ConvNetMeanCIRatio float64 `json:"convnet_mean_ci_ratio"`
}

// strataArtifactPath names the per-(network, dtype) strata artifact inside
// a -strata-dir / -prior-dir directory.
func strataArtifactPath(dir, name string, dt numeric.Type) string {
	return filepath.Join(dir, fmt.Sprintf("%s_%s.strata.json", name, dt))
}

// measureSampling runs one uniform and one stratified campaign of n
// injections on a fresh network and compares their SDC-1 intervals. A
// priorDir artifact turns the stratified run pilot-free (the whole budget
// is Neyman-allocated from the previous run's strata); a strataDir
// persists this run's strata for such reuse.
func measureSampling(name string, dt numeric.Type, n, workers int, priorDir, strataDir string) SamplingResult {
	net := models.Build(name)
	in := models.InputFor(name, 0)
	c := faultinj.New(net, dt, []*tensor.Tensor{in})
	c.Golden(0)

	uni := c.Run(faultinj.Options{N: n, Seed: 1, Workers: workers})
	up := stats.Proportion{
		Successes: uni.Counts.Hits[sdc.SDC1],
		Trials:    uni.Counts.DefinedTrials[sdc.SDC1],
	}

	sopt := faultinj.Options{N: n, Seed: 1, Workers: workers, Sampling: faultinj.SamplingStratified}
	pilot, _ := faultinj.PilotBudget(n, 0)
	var pilotStrata *engine.StrataSummary
	if priorDir != "" {
		a, err := engine.ReadStrataArtifact(strataArtifactPath(priorDir, name, dt))
		if err != nil {
			log.Fatal(err)
		}
		sopt.Prior, sopt.PilotN, pilot = a.Prior(), -1, 0
	} else {
		sopt.OnPilotStrata = func(s *engine.StrataSummary) { pilotStrata = s }
	}
	str := c.Run(sopt)
	if strataDir != "" {
		err := engine.WriteStrataArtifact(strataArtifactPath(strataDir, name, dt), &engine.StrataArtifact{
			Surface: "datapath", Net: name, DType: dt.String(),
			N: n, PilotN: pilot, Pilot: pilotStrata, Total: str.Strata,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	sp, sci := str.SDCEstimate(sdc.SDC1)

	res := SamplingResult{
		Network: name, DType: dt.String(), Injections: n, PilotN: pilot,
		UniformSDC1: up.P(), UniformCI: up.CI95(),
		StratifiedSDC1: sp, StratifiedCI: sci,
	}
	if res.StratifiedCI > 0 {
		res.CIRatio = round2(res.UniformCI / res.StratifiedCI)
	}
	return res
}

// runSampling sweeps ConvNet across every numeric format and writes the
// BENCH_4.json equal-budget CI comparison.
func runSampling(n, workers int, out, date, priorDir, strataDir string) {
	if strataDir != "" {
		if err := os.MkdirAll(strataDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	doc := SamplingOutput{Benchmark: "SamplingEfficiency", Date: date, Workers: workers}
	logRatio, nConv := 0.0, 0
	for _, dt := range numeric.Types {
		res := measureSampling("ConvNet", dt, n, workers, priorDir, strataDir)
		doc.Results = append(doc.Results, res)
		if res.CIRatio > 0 {
			logRatio += math.Log(res.CIRatio)
			nConv++
		}
		fmt.Printf("%-8s %-9s uniform %.3f%% ±%.3f%%   stratified %.3f%% ±%.3f%%   CI ratio %.2fx\n",
			res.Network, res.DType, 100*res.UniformSDC1, 100*res.UniformCI,
			100*res.StratifiedSDC1, 100*res.StratifiedCI, res.CIRatio)
	}
	if nConv > 0 {
		doc.ConvNetMeanCIRatio = round2(math.Exp(logRatio / float64(nConv)))
	}
	fmt.Printf("ConvNet geomean CI ratio: %.2fx\n", doc.ConvNetMeanCIRatio)

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

// BitParallelResult is one (network, dtype) comparison of the three
// evaluation designs at equal injection count.
type BitParallelResult struct {
	Network    string `json:"network"`
	DType      string `json:"dtype"`
	Injections int    `json:"injections"`
	// PreMaskedFrac is the fraction of bit-plane injections the analytical
	// pre-screen proved masked without any replay.
	PreMaskedFrac float64 `json:"pre_masked_fraction"`
	// IncrementalInjPS is the legacy per-bit design (independent
	// (site, bit) draw per injection); SiteScalarInjPS and BitPlaneInjPS
	// are the site-draw modes, which evaluate every bit of a drawn site.
	IncrementalInjPS float64 `json:"incremental_inj_per_sec"`
	SiteScalarInjPS  float64 `json:"site_scalar_inj_per_sec"`
	BitPlaneInjPS    float64 `json:"bitplane_inj_per_sec"`
	// SpeedupVsScalar is BitPlane over SiteScalar — the gain attributable
	// to the plane kernel and pre-screen alone, at identical draws.
	SpeedupVsScalar float64 `json:"speedup_vs_site_scalar"`
	// VsBaseline is BitPlane throughput over the baseline document's
	// incremental throughput for the same cell — the acceptance ratio.
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// BitParallelOutput is the BENCH_6.json document.
type BitParallelOutput struct {
	Benchmark string              `json:"benchmark"`
	Date      string              `json:"date"`
	Workers   int                 `json:"workers"`
	Baseline  string              `json:"baseline,omitempty"`
	Results   []BitParallelResult `json:"results"`
	// MeanVsBaseline / ConvNetMeanVsBaseline are geometric means of
	// VsBaseline; the ConvNet figure is the acceptance number (want ≥ 5).
	MeanVsBaseline        float64 `json:"mean_vs_baseline,omitempty"`
	ConvNetMeanVsBaseline float64 `json:"convnet_mean_vs_baseline,omitempty"`
}

// measureEval runs one campaign under the given evaluation mode and
// returns injections per second plus the pre-screened fraction.
func measureEval(name string, dt numeric.Type, n, workers int, eval faultinj.EvalMode) (injPerSec, preFrac float64) {
	net := models.Build(name)
	in := models.InputFor(name, 0)
	c := faultinj.New(net, dt, []*tensor.Tensor{in})
	c.Golden(0)
	opt := faultinj.Options{N: n, Seed: 1, Workers: workers, Eval: eval}
	start := time.Now()
	r := c.Run(opt)
	elapsed := time.Since(start)
	return float64(n) / elapsed.Seconds(), float64(r.PreMasked) / float64(n)
}

// runBitParallel sweeps the BENCH_1 matrix across the three evaluation
// designs and writes the BENCH_6.json document.
func runBitParallel(n, workers int, out, baseline, date string) {
	baseInjPS := map[string]float64{}
	if baseline != "" {
		data, err := os.ReadFile(baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base Output
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("decoding %s: %v", baseline, err)
		}
		for _, r := range base.Results {
			baseInjPS[r.Network+"/"+r.DType] = r.IncrementalInjPS
		}
	}
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}

	doc := BitParallelOutput{Benchmark: "BitParallelThroughput", Date: date, Workers: workers, Baseline: baseline}
	matrix := []struct {
		name string
		dts  []numeric.Type
	}{
		{"AlexNet", []numeric.Type{numeric.Float16, numeric.Fx32RB10}},
		{"ConvNet", numeric.Types},
	}
	logAll, logConv, nAll, nConv := 0.0, 0.0, 0, 0
	for _, row := range matrix {
		for _, dt := range row.dts {
			inc, _ := measureEval(row.name, dt, n, workers, faultinj.EvalPerBit)
			scalar, _ := measureEval(row.name, dt, n, workers, faultinj.EvalSiteScalar)
			plane, pre := measureEval(row.name, dt, n, workers, faultinj.EvalSiteBitPlane)
			res := BitParallelResult{
				Network: row.name, DType: dt.String(), Injections: n,
				PreMaskedFrac:    round2(pre),
				IncrementalInjPS: round2(inc),
				SiteScalarInjPS:  round2(scalar),
				BitPlaneInjPS:    round2(plane),
				SpeedupVsScalar:  round2(plane / scalar),
			}
			if b := baseInjPS[res.Network+"/"+res.DType]; b > 0 {
				res.VsBaseline = round2(plane / b)
				logAll += math.Log(plane / b)
				nAll++
				if row.name == "ConvNet" {
					logConv += math.Log(plane / b)
					nConv++
				}
			}
			doc.Results = append(doc.Results, res)
			fmt.Printf("%-8s %-9s perbit %8.1f inj/s   site-scalar %8.1f inj/s   bitplane %9.1f inj/s   pre-masked %4.1f%%   vs-baseline %.2fx\n",
				row.name, dt, inc, scalar, plane, pre*100, res.VsBaseline)
		}
	}
	if nAll > 0 {
		doc.MeanVsBaseline = round2(math.Exp(logAll / float64(nAll)))
	}
	if nConv > 0 {
		doc.ConvNetMeanVsBaseline = round2(math.Exp(logConv / float64(nConv)))
	}
	fmt.Printf("geomean vs-baseline: %.2fx   ConvNet geomean: %.2fx\n", doc.MeanVsBaseline, doc.ConvNetMeanVsBaseline)

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

// XArchEntry is one architecture's leg of the equal-FIT comparison:
// "row" is the row-stationary datapath; "weight", "output" and "input"
// are the three systolic dataflows.
type XArchEntry struct {
	Arch string `json:"arch"`
	// SDC1/CI are the SDC-1 estimate and 95% half-width at the shared
	// injection budget and seed; FIT is the Eq. 1 contribution at the
	// shared latch-bit budget.
	SDC1 float64 `json:"sdc1"`
	CI   float64 `json:"ci95"`
	FIT  float64 `json:"fit"`
	// FITRatio is this architecture's FIT over the row-stationary FIT —
	// above 1 means this dataflow propagates more upsets into SDCs.
	// Omitted on the row-stationary leg itself.
	FITRatio float64 `json:"fit_ratio,omitempty"`
	// ArchMaskedFrac is the fraction of injections masked architecturally
	// (pipeline faults at a column-tile edge with no downstream PE) — a
	// propagation sink the row-stationary model has no analogue of.
	// Systolic legs only.
	ArchMaskedFrac float64 `json:"arch_masked_fraction,omitempty"`
}

// XArchResult is one (network, dtype) equal-FIT-budget comparison across
// the four PE-array architectures.
type XArchResult struct {
	Network    string `json:"network"`
	DType      string `json:"dtype"`
	Injections int    `json:"injections"`
	// LatchBits is the exposed latch-bit count every architecture is
	// sized to (1344 PEs × 4 latches × word width) — the shared raw-fault
	// budget of the comparison.
	LatchBits int64        `json:"latch_bits"`
	Arches    []XArchEntry `json:"architectures"`
}

// XArchOutput is the BENCH_10.json document.
type XArchOutput struct {
	Benchmark string        `json:"benchmark"`
	Date      string        `json:"date"`
	Workers   int           `json:"workers"`
	Results   []XArchResult `json:"results"`
	// ConvNetMeanFITRatio maps each systolic dataflow to the geometric
	// mean of its FITRatio over the ConvNet rows — the cross-architecture
	// acceptance figures.
	ConvNetMeanFITRatio map[string]float64 `json:"convnet_mean_fit_ratio"`
}

// xarchArray is the systolic array sized to the row-stationary comparison
// point: 42 × 32 = 1344 PEs, matching eyeriss.Params16nm.NumPEs with the
// same four latches per PE, so every architecture exposes identical
// latch-bit counts at every word width.
var xarchArray = systolic.Params{Rows: 42, Cols: 32}

// xarchFlows are the systolic dataflow legs of the comparison.
var xarchFlows = []systolic.Dataflow{
	systolic.WeightStationary, systolic.OutputStationary, systolic.InputStationary,
}

// measureXArch runs the four architectures' campaigns at equal injection
// budget and seed and compares their SDC-at-equal-FIT figures. The
// latch-bit budget equality is asserted per architecture; a leg whose bit
// count cannot match the row-stationary budget is logged and skipped
// rather than silently compared at unequal area.
func measureXArch(name string, dt numeric.Type, n, workers int) XArchResult {
	net := models.Build(name)
	in := models.InputFor(name, 0)

	rc := faultinj.New(net, dt, []*tensor.Tensor{in})
	rc.Golden(0)
	row := rc.Run(faultinj.Options{N: n, Seed: 1, Workers: workers})
	rp := stats.Proportion{
		Successes: row.Counts.Hits[sdc.SDC1],
		Trials:    row.Counts.DefinedTrials[sdc.SDC1],
	}
	budget := eyeriss.Params16nm.Datapath(dt).TotalLatchBits()
	rowFIT := fit.Component{Name: "row-stationary datapath", Bits: budget, SDCProb: rp.P()}.FIT()

	res := XArchResult{
		Network: name, DType: dt.String(), Injections: n, LatchBits: budget,
		Arches: []XArchEntry{{Arch: "row", SDC1: rp.P(), CI: rp.CI95(), FIT: rowFIT}},
	}
	for _, flow := range xarchFlows {
		if bits := systolic.LatchBits(xarchArray, dt); bits != budget {
			log.Printf("xarch: skipping %s-stationary at %s: %d latch bits vs the %d-bit row-stationary budget",
				flow, dt, bits, budget)
			continue
		}
		wc := &systolic.Campaign{
			Build: func() *network.Network { return models.Build(name) },
			DType: dt, Inputs: []*tensor.Tensor{in}, Array: xarchArray, Flow: flow,
		}
		ws := wc.Run(systolic.Options{N: n, Seed: 1, Workers: workers})
		wp := stats.Proportion{
			Successes: ws.Counts.Hits[sdc.SDC1],
			Trials:    ws.Counts.DefinedTrials[sdc.SDC1],
		}
		e := XArchEntry{
			Arch: flow.String(), SDC1: wp.P(), CI: wp.CI95(),
			FIT:            systolic.FITComponent(budget, wp.P()).FIT(),
			ArchMaskedFrac: round2(float64(ws.ArchMasked) / float64(n)),
		}
		if rowFIT > 0 {
			e.FITRatio = round2(e.FIT / rowFIT)
		}
		res.Arches = append(res.Arches, e)
	}
	return res
}

// runXArch sweeps ConvNet across every numeric format and writes the
// BENCH_10.json cross-architecture comparison.
func runXArch(n, workers int, out, date string) {
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	doc := XArchOutput{Benchmark: "CrossArchitecture", Date: date, Workers: workers}
	logRatio, nRatio := map[string]float64{}, map[string]int{}
	for _, dt := range numeric.Types {
		res := measureXArch("ConvNet", dt, n, workers)
		doc.Results = append(doc.Results, res)
		fmt.Printf("%-8s %-9s", res.Network, res.DType)
		for _, e := range res.Arches {
			fmt.Printf("   %s %.3f%% ±%.3f%% (FIT %.4g", e.Arch, 100*e.SDC1, 100*e.CI, e.FIT)
			if e.FITRatio > 0 {
				logRatio[e.Arch] += math.Log(e.FITRatio)
				nRatio[e.Arch]++
				fmt.Printf(", ratio %.2fx", e.FITRatio)
			}
			fmt.Print(")")
		}
		fmt.Println()
	}
	doc.ConvNetMeanFITRatio = map[string]float64{}
	for arch, lr := range logRatio {
		doc.ConvNetMeanFITRatio[arch] = round2(math.Exp(lr / float64(nRatio[arch])))
	}
	fmt.Printf("ConvNet geomean FIT ratios vs row-stationary: weight %.2fx   output %.2fx   input %.2fx\n",
		doc.ConvNetMeanFITRatio["weight"], doc.ConvNetMeanFITRatio["output"], doc.ConvNetMeanFITRatio["input"])

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtrack: ")

	mode := flag.String("mode", "throughput", "throughput (BENCH_1-style inj/s comparison), sampling (BENCH_4 equal-budget CI comparison), bitparallel (BENCH_6 site-draw evaluation comparison), plane (BENCH_8 control-plane ingest comparison) or xarch (BENCH_10 four-way row-/weight-/output-/input-stationary SDC at equal FIT budget)")
	n := flag.Int("n", 2000, "injections per campaign")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	out := flag.String("o", "BENCH_1.json", "output JSON path")
	baseline := flag.String("baseline", "", "earlier benchtrack JSON to compute vs_baseline throughput ratios against")
	date := flag.String("date", "", "date stamp to embed (default: today)")
	priorDir := flag.String("prior-dir", "", "sampling mode: seed stratified allocations from the strata artifacts a previous -strata-dir run wrote (skips pilots)")
	strataDir := flag.String("strata-dir", "", "sampling mode: write per-(network, dtype) strata artifacts here for later -prior-dir reuse")
	flag.Parse()

	if *n <= 0 {
		log.Fatal("-n must be positive")
	}
	if *date == "" {
		*date = time.Now().UTC().Format("2006-01-02")
	}
	switch *mode {
	case "throughput":
		if *priorDir != "" || *strataDir != "" {
			log.Fatal("-prior-dir/-strata-dir only apply to -mode sampling")
		}
	case "sampling":
		runSampling(*n, *workers, *out, *date, *priorDir, *strataDir)
		return
	case "bitparallel":
		if *priorDir != "" || *strataDir != "" {
			log.Fatal("-prior-dir/-strata-dir only apply to -mode sampling")
		}
		runBitParallel(*n, *workers, *out, *baseline, *date)
		return
	case "plane":
		if *priorDir != "" || *strataDir != "" {
			log.Fatal("-prior-dir/-strata-dir only apply to -mode sampling")
		}
		runPlane(*n, *workers, *out, *date)
		return
	case "xarch":
		if *priorDir != "" || *strataDir != "" {
			log.Fatal("-prior-dir/-strata-dir only apply to -mode sampling")
		}
		runXArch(*n, *workers, *out, *date)
		return
	default:
		log.Fatalf("unknown -mode %q (throughput, sampling, bitparallel, plane or xarch)", *mode)
	}
	// baseInjPS maps (network, dtype) to the baseline document's
	// incremental throughput.
	baseInjPS := map[string]float64{}
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			log.Fatal(err)
		}
		var base Output
		if err := json.Unmarshal(data, &base); err != nil {
			log.Fatalf("decoding %s: %v", *baseline, err)
		}
		for _, r := range base.Results {
			baseInjPS[r.Network+"/"+r.DType] = r.IncrementalInjPS
		}
	}
	// Open the output before the (long) measurement phase so a bad path
	// fails in milliseconds, not minutes.
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}

	doc := Output{Benchmark: "CampaignThroughput", Date: *date, Workers: *workers, Baseline: *baseline}
	// AlexNet keeps the two formats BENCH_1 measured (so vs_baseline is
	// meaningful); ConvNet sweeps every numeric format — the acceptance
	// figure for sparse downstream propagation is per-format, not just
	// FLOAT16.
	matrix := []struct {
		name string
		dts  []numeric.Type
	}{
		{"AlexNet", []numeric.Type{numeric.Float16, numeric.Fx32RB10}},
		{"ConvNet", numeric.Types},
	}
	logSpeedup, logConv, nConv := 0.0, 0.0, 0
	for _, row := range matrix {
		for _, dt := range row.dts {
			// Dense first so the incremental run cannot inherit a warm cache
			// indirectly; each mode gets its own fresh network anyway.
			dense, _ := measure(row.name, dt, *n, *workers, true)
			inc, masked := measure(row.name, dt, *n, *workers, false)
			res := Result{
				Network: row.name, DType: dt.String(), Injections: *n,
				MaskedFrac:       round2(masked),
				IncrementalInjPS: round2(inc), DenseInjPS: round2(dense),
				Speedup: round2(inc / dense),
			}
			if b := baseInjPS[res.Network+"/"+res.DType]; b > 0 {
				res.VsBaseline = round2(inc / b)
			}
			doc.Results = append(doc.Results, res)
			logSpeedup += math.Log(inc / dense)
			if row.name == "ConvNet" {
				logConv += math.Log(inc / dense)
				nConv++
			}
			fmt.Printf("%-8s %-9s incremental %8.1f inj/s   dense %8.1f inj/s   speedup %5.2fx   masked %4.1f%%   vs-baseline %.2fx\n",
				row.name, dt, inc, dense, inc/dense, masked*100, res.VsBaseline)
		}
	}
	doc.MeanSpeedup = round2(math.Exp(logSpeedup / float64(len(doc.Results))))
	doc.ConvNetMeanSpeedup = round2(math.Exp(logConv / float64(nConv)))
	fmt.Printf("geomean speedup: %.2fx   ConvNet geomean: %.2fx\n", doc.MeanSpeedup, doc.ConvNetMeanSpeedup)

	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
