// Command sedeval evaluates the Symptom-based Error Detector (§6.2):
// precision and recall per network (Figure 8) and the resulting Eyeriss
// FIT reduction.
//
// Usage:
//
//	sedeval -n 3000
//	sedeval -n 1000 -nets AlexNet -fit
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/numeric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sedeval: ")

	n := flag.Int("n", 3000, "injections per (network, data type, component)")
	inputs := flag.Int("inputs", 4, "number of distinct input images")
	seed := flag.Int64("seed", 1, "campaign seed")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output); empty = calibrated synthetic weights")
	nets := flag.String("nets", strings.Join(core.SEDNetworks, ","), "comma-separated network list")
	fitFlag := flag.Bool("fit", false, "also print the FIT before/after SED comparison")
	flag.Parse()

	cfg := core.Config{Injections: *n, Inputs: *inputs, Seed: *seed, WeightsDir: *weightsDir}
	networks := strings.Split(*nets, ",")

	rows := core.Fig8(cfg, networks, core.SEDDataTypes)
	fmt.Print(core.FormatFig8(rows))

	if *fitFlag {
		var fitRows []core.SEDFITRow
		for _, name := range networks {
			for _, dt := range []numeric.Type{numeric.Float, numeric.Float16} {
				fitRows = append(fitRows, core.SEDFIT(cfg, name, dt))
			}
		}
		fmt.Println()
		fmt.Print(core.FormatSEDFIT(fitRows))
	}
}
