// Command pretrain trains each network on the synthetic labeled task and
// writes the weights to disk, playing the role of the BVLC model zoo the
// paper downloads its pre-trained models from (§4.1).
//
// Usage:
//
//	pretrain -out weights -steps 400
//	pretrain -out weights -nets ConvNet -steps 600
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/models"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pretrain: ")

	out := flag.String("out", "weights", "output directory")
	steps := flag.Int("steps", 400, "SGD steps per network")
	seed := flag.Int64("seed", 7, "training seed")
	nets := flag.String("nets", strings.Join(models.Names, ","), "comma-separated network list")
	flag.Parse()

	for _, name := range strings.Split(*nets, ",") {
		start := time.Now()
		net := models.BuildTrained(name, *steps, *seed)
		acc := models.TrainedAccuracy(net, name, 50)
		path := filepath.Join(*out, name+".weights")
		if err := models.SaveWeights(net, path); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %d steps in %-8s held-out accuracy %5.1f%%  -> %s\n",
			name, *steps, time.Since(start).Round(time.Second), acc*100, path)
	}
}
