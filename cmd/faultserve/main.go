// Command faultserve runs distributed fault-injection campaigns: a
// coordinator shards a campaign's injection space and serves leases over
// HTTP; workers lease shards, execute them and report back. The merged
// result is bit-identical to running the same spec in one process (the
// solo role), and the coordinator checkpoints after every shard so a
// killed campaign resumes without re-running finished work.
//
// Usage:
//
//	faultserve -role coordinator -net AlexNet -dtype FLOAT16 -n 3000 \
//	    -shards 16 -addr 127.0.0.1:8711 -checkpoint run.ckpt -out report.json
//	faultserve -role worker -join http://127.0.0.1:8711 -procs 4
//	faultserve -role solo -net AlexNet -dtype FLOAT16 -n 3000 -out report.json
//
// The coordinator streams live aggregates at GET /v1/stream (NDJSON, one
// snapshot per completed shard) and exports expvar counters at
// /debug/vars; -pprof additionally mounts /debug/pprof/.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/engine"
	"repro/internal/sdc"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultserve: ")

	role := flag.String("role", "solo", "coordinator, worker or solo")

	// Campaign spec (coordinator and solo; workers receive it in leases).
	netName := flag.String("net", "AlexNet", "network: ConvNet, AlexNet, CaffeNet or NiN")
	dtypeName := flag.String("dtype", "FLOAT16", "data type: DOUBLE, FLOAT, FLOAT16, 32b_rb26, 32b_rb10 or 16b_rb10")
	n := flag.Int("n", 3000, "number of fault injections")
	inputs := flag.Int("inputs", 4, "number of distinct input images")
	seed := flag.Int64("seed", 1, "campaign seed")
	shards := flag.Int("shards", 0, "shard count (0 = 2x NumCPU, clamped to n)")
	selMode := flag.String("select", "uniform", "site selector: uniform, perbit or perlayer")
	selParam := flag.Int("param", 0, "fixed bit (perbit) or block (perlayer)")
	trackValues := flag.Int("track-values", 0, "sample up to this many golden/faulty activation pairs")
	trackSpread := flag.Bool("track-spread", false, "accumulate the Table 5 final-block mismatch metric")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output)")
	sampling := flag.String("sampling", "uniform", "site sampling design: uniform or stratified (two-phase pilot + Neyman allocation)")
	pilotN := flag.Int("pilot", 0, "stratified pilot budget (0 = n/5)")
	surface := flag.String("surface", "datapath", "fault surface: datapath (latch campaigns) or buffer (Eyeriss buffer hierarchy)")
	buffer := flag.String("buffer", "", "buffer class of a buffer-surface campaign: global, filter, img or psum (default global)")
	prior := flag.String("prior", "", "strata artifact from a previous stratified campaign; seeds the Neyman allocation and skips the pilot")
	strataOut := flag.String("strata-out", "", "write this campaign's strata artifact (stratified campaigns; seeds later -prior runs)")

	// Coordinator.
	addr := flag.String("addr", "127.0.0.1:0", "coordinator listen address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file; resumes when it already holds this campaign")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "shard lease TTL; missed heartbeats past this re-lease the shard")
	maxRetries := flag.Int("max-retries", 3, "re-lease attempts per shard before the campaign fails")
	linger := flag.Duration("linger", 0, "keep serving this long after completion (lets stream readers drain)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof on the coordinator")
	out := flag.String("out", "", "write the final merged report as JSON to this file")

	// Worker.
	join := flag.String("join", "", "coordinator base URL, e.g. http://127.0.0.1:8711")
	procs := flag.Int("procs", 1, "concurrent shard executors in this worker")
	goldenDir := flag.String("golden-dir", "", "persist golden executions here; restarted workers (and workers sharing the directory) skip recomputing them")
	maxLeases := flag.Int("max-leases", 0, "exit after completing this many shards (0 = run to campaign end)")
	crashAfter := flag.Int("crash-after", 0, "complete this many shards, take one more lease, then exit hard (tests re-lease + resume)")
	flag.Parse()

	spec := campaign.Spec{
		Net: *netName, DType: *dtypeName, N: *n, Inputs: *inputs, Seed: *seed,
		Shards: *shards, Select: *selMode, Param: *selParam,
		TrackValues: *trackValues, TrackSpread: *trackSpread, WeightsDir: *weightsDir,
		Sampling: *sampling, PilotN: *pilotN,
		Surface: *surface, Buffer: *buffer, PriorPath: *prior,
	}

	switch *role {
	case "coordinator":
		runCoordinator(spec, *addr, *addrFile, *checkpoint, *leaseTTL, *maxRetries, *linger, *pprofOn, *out, *strataOut)
	case "worker":
		runWorker(*join, *procs, *maxLeases, *crashAfter, *goldenDir)
	case "solo":
		report, pilot, err := campaign.SoloReport(spec, nil)
		if err != nil {
			log.Fatal(err)
		}
		writeStrata(*strataOut, spec, pilot, report)
		emit(report, *out)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		flag.Usage()
		os.Exit(2)
	}
}

func runCoordinator(spec campaign.Spec, addr, addrFile, checkpoint string,
	leaseTTL time.Duration, maxRetries int, linger time.Duration, pprofOn bool, out, strataOut string) {
	co, err := campaign.NewCoordinator(campaign.Config{
		Spec:           spec,
		CheckpointPath: checkpoint,
		LeaseTTL:       leaseTTL,
		MaxRetries:     maxRetries,
		Pprof:          pprofOn,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	sp := co.Spec()
	log.Printf("serving %s/%s n=%d as %d shards on %s (resumed %d shards from checkpoint)",
		sp.Net, sp.DType, sp.N, sp.Shards, ln.Addr(), co.Resumed())

	srv := &http.Server{Handler: co.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	// Done only closes on success; surface a failed campaign (a shard out
	// of retries) by polling the error state.
	for {
		select {
		case <-co.Done():
			report, err := co.FinalReport()
			if err != nil {
				log.Fatal(err)
			}
			if linger > 0 {
				time.Sleep(linger)
			}
			srv.Shutdown(context.Background())
			co.Close()
			writeStrata(strataOut, co.Spec(), co.PilotStrata(), report)
			emit(report, out)
			return
		case <-time.After(250 * time.Millisecond):
			if err := co.Err(); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func runWorker(join string, procs, maxLeases, crashAfter int, goldenDir string) {
	if join == "" {
		log.Fatal("worker needs -join URL")
	}
	join = strings.TrimRight(join, "/")
	w := &campaign.Worker{
		Base:      join,
		Name:      fmt.Sprintf("pid%d", os.Getpid()),
		Procs:     procs,
		MaxLeases: maxLeases,
	}
	if goldenDir != "" {
		w.Goldens = campaign.NewGoldenCache()
		w.Goldens.Persist(goldenDir)
	}
	if crashAfter > 0 {
		w.MaxLeases = crashAfter
	}
	if err := w.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	if crashAfter > 0 {
		// Simulate a worker dying mid-shard: grab one more lease, never
		// heartbeat or report, and exit the way SIGKILL would. The
		// coordinator must expire the lease and hand the shard out again.
		resp, err := http.Post(join+"/v1/lease", "application/json", strings.NewReader("{}"))
		if err == nil {
			resp.Body.Close()
		}
		os.Exit(137)
	}
}

// writeStrata persists a stratified campaign's strata artifact for later
// -prior reuse: the merged pilot when one ran (so a reseeded campaign
// reconstructs this campaign's exact allocation table), plus the final
// per-stratum totals.
func writeStrata(path string, spec campaign.Spec, pilot *engine.StrataSummary, report *campaign.Report) {
	if path == "" {
		return
	}
	if err := spec.Normalize(); err != nil {
		log.Fatal(err)
	}
	if !spec.Stratified() {
		log.Fatal("-strata-out needs a stratified campaign")
	}
	a := &engine.StrataArtifact{
		Surface: spec.Surface, Net: spec.Net, DType: spec.DType,
		N: spec.N, PilotN: spec.PilotN,
		Pilot: pilot, Total: report.Strata(),
	}
	if spec.BufferSurface() {
		a.Buffer = spec.Buffer
	}
	if err := engine.WriteStrataArtifact(path, a); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote strata artifact %s", path)
}

// emit writes the report JSON (when requested) and prints the summary the
// interactive roles share. The JSON body is the inner surface report —
// exactly what a solo faultinj/eyeriss run of the same spec serializes to,
// so distributed and solo outputs byte-compare.
func emit(report *campaign.Report, out string) {
	if out != "" {
		var inner any = report.Datapath
		if report.Buffer != nil {
			inner = report.Buffer
		}
		data, err := json.MarshalIndent(inner, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	c := report.Counts()
	masked := report.Masked()
	fmt.Printf("injections %d  masked %d (%.1f%%)\n",
		c.Trials, masked, 100*float64(masked)/float64(max(c.Trials, 1)))
	for _, k := range sdc.Kinds {
		if report.Strata() != nil {
			// Stratified campaigns over-sample high-variance strata; the
			// weighted estimate undoes that, the raw proportion would not.
			p, ci := report.SDCEstimate(k)
			fmt.Printf("%-8s %.2f%% ±%.2f%%\n", k, 100*p, 100*ci)
			continue
		}
		p := stats.Proportion{Successes: c.Hits[k], Trials: c.DefinedTrials[k]}
		fmt.Printf("%-8s %s\n", k, p)
	}
}
