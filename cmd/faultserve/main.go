// Command faultserve runs distributed fault-injection campaigns: a
// coordinator shards a campaign's injection space and serves leases over
// HTTP; workers lease shards, execute them and report back. The merged
// result is bit-identical to running the same spec in one process (the
// solo role), and the coordinator checkpoints after every shard so a
// killed campaign resumes without re-running finished work.
//
// Usage:
//
//	faultserve -role coordinator -net AlexNet -dtype FLOAT16 -n 3000 \
//	    -shards 16 -addr 127.0.0.1:8711 -checkpoint run.ckpt -out report.json
//	faultserve -role worker -join http://127.0.0.1:8711 -procs 4
//	faultserve -role solo -net AlexNet -dtype FLOAT16 -n 3000 -out report.json
//
// The multi-tenant control plane queues many campaigns onto one shared
// worker fleet (fair-share scheduled, journaled for resume, optionally
// token-authenticated). Roles are separated: workers authenticate with
// the reserved "fleet" principal's token (a tenant token cannot pull
// leases or post reports, and the fleet token cannot touch campaigns), so
// an authenticated key file needs a "fleet:secret" line for its workers:
//
//	faultserve -role ctl -addr 127.0.0.1:8711 -journal ctl.journal \
//	    -tenant-keys keys.txt
//	faultserve -role worker -join http://127.0.0.1:8711 -token-file fleet.tok
//	faultserve -role submit -join http://127.0.0.1:8711 -token-file tok \
//	    -net AlexNet -n 3000 -priority 4
//	faultserve -role watch -join http://127.0.0.1:8711 -campaign c1 -out report.json
//	faultserve -role cancel -join http://127.0.0.1:8711 -campaign c1
//	faultserve -role list -join http://127.0.0.1:8711
//	faultserve -role token -tenant-keys keys.txt -tenant alice
//
// The coordinator streams live aggregates at GET /v1/stream (NDJSON, one
// snapshot per completed shard) and exports expvar counters at
// /debug/vars; -pprof additionally mounts /debug/pprof/. Workers drain
// gracefully on SIGTERM/SIGINT: in-flight shards finish and post their
// reports before exit.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/controlplane"
	"repro/internal/engine"
	"repro/internal/sdc"
	"repro/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultserve: ")

	role := flag.String("role", "solo", "coordinator, worker, solo, ctl, or a ctl client verb: submit, watch, cancel, list, token")

	// Campaign spec (coordinator and solo; workers receive it in leases).
	netName := flag.String("net", "AlexNet", "network: ConvNet, AlexNet, CaffeNet or NiN")
	dtypeName := flag.String("dtype", "FLOAT16", "data type: DOUBLE, FLOAT, FLOAT16, 32b_rb26, 32b_rb10 or 16b_rb10")
	n := flag.Int("n", 3000, "number of fault injections")
	inputs := flag.Int("inputs", 4, "number of distinct input images")
	seed := flag.Int64("seed", 1, "campaign seed")
	shards := flag.Int("shards", 0, "shard count (0 = 2x NumCPU, clamped to n)")
	selMode := flag.String("select", "uniform", "site selector: uniform, perbit or perlayer")
	selParam := flag.Int("param", 0, "fixed bit (perbit) or block (perlayer)")
	trackValues := flag.Int("track-values", 0, "sample up to this many golden/faulty activation pairs")
	trackSpread := flag.Bool("track-spread", false, "accumulate the Table 5 final-block mismatch metric")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output)")
	sampling := flag.String("sampling", "uniform", "site sampling design: uniform or stratified (two-phase pilot + Neyman allocation)")
	pilotN := flag.Int("pilot", 0, "stratified pilot budget (0 = n/5)")
	surface := flag.String("surface", "datapath", "fault surface: datapath (latch campaigns), buffer (Eyeriss buffer hierarchy) or systolic (dataflow-parameterized array)")
	buffer := flag.String("buffer", "", "buffer class of a buffer-surface campaign: global, filter, img or psum (default global)")
	dataflow := flag.String("dataflow", "", "systolic-surface dataflow: weight (default), output or input")
	mbu := flag.Int("mbu", 0, "multi-bit-upset width on any surface: flip this many adjacent bits per injection (0/1 = single-bit)")
	prior := flag.String("prior", "", "strata artifact from a previous stratified campaign; seeds the Neyman allocation and skips the pilot")
	strataOut := flag.String("strata-out", "", "write this campaign's strata artifact (stratified campaigns; seeds later -prior runs)")

	// Coordinator.
	addr := flag.String("addr", "127.0.0.1:0", "coordinator listen address")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for scripts using port 0)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file; resumes when it already holds this campaign")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "shard lease TTL; missed heartbeats past this re-lease the shard")
	maxRetries := flag.Int("max-retries", 3, "re-lease attempts per shard before the campaign fails")
	linger := flag.Duration("linger", 0, "keep serving this long after completion (lets stream readers drain)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof on the coordinator")
	out := flag.String("out", "", "write the final merged report as JSON to this file")

	// Worker.
	join := flag.String("join", "", "coordinator or control-plane base URL, e.g. http://127.0.0.1:8711")
	procs := flag.Int("procs", 1, "concurrent shard executors in this worker")
	goldenDir := flag.String("golden-dir", "", "persist golden executions here; restarted workers (and workers sharing the directory) skip recomputing them")
	maxLeases := flag.Int("max-leases", 0, "exit after completing this many shards (0 = run to campaign end)")
	crashAfter := flag.Int("crash-after", 0, "complete this many shards, take one more lease, then exit hard (tests re-lease + resume)")
	maxBackoff := flag.Duration("max-backoff", 5*time.Second, "cap on the worker's jittered exponential retry backoff")
	prefetch := flag.Int("prefetch", 0, "extra leases requested beyond -procs so executors never idle (0 = default 2, negative = disable)")

	// Control plane (ctl) and its clients.
	journal := flag.String("journal", "", "control-plane journal (checkpoint v5, reads v4); resumes every unfinished campaign on restart")
	tenantKeys := flag.String("tenant-keys", "", "tenant key file (tenant:secret per line); enables bearer-token authn")
	defaultQuota := flag.Int("default-quota", 0, "in-flight lease cap for campaigns submitted without one (0 = unlimited)")
	maxQueued := flag.Int("max-queued", 0, "per-tenant cap on queued+running campaigns; submits past it get HTTP 429 (0 = unlimited)")
	compactBytes := flag.Int64("compact-bytes", 4<<20, "journal size that triggers snapshot compaction (0 = only on restart)")
	token := flag.String("token", "", "bearer token for authenticated control planes")
	tokenFile := flag.String("token-file", "", "file holding the bearer token")
	campaignID := flag.String("campaign", "", "campaign ID for watch/cancel")
	tenant := flag.String("tenant", "", "tenant name for the token verb")
	priority := flag.Int("priority", 1, "submit: fair-share weight (1-16); a campaign gets leases in proportion to its priority")
	quota := flag.Int("quota", 0, "submit: max in-flight leases for this campaign (0 = plane default)")
	flag.Parse()

	spec := campaign.Spec{
		Net: *netName, DType: *dtypeName, N: *n, Inputs: *inputs, Seed: *seed,
		Shards: *shards, Select: *selMode, Param: *selParam,
		TrackValues: *trackValues, TrackSpread: *trackSpread, WeightsDir: *weightsDir,
		Sampling: *sampling, PilotN: *pilotN,
		Surface: *surface, Buffer: *buffer, Dataflow: *dataflow, MBU: *mbu, PriorPath: *prior,
	}

	bearer := resolveToken(*token, *tokenFile)

	switch *role {
	case "coordinator":
		runCoordinator(spec, *addr, *addrFile, *checkpoint, *leaseTTL, *maxRetries, *linger, *pprofOn, *out, *strataOut)
	case "worker":
		runWorker(*join, *procs, *maxLeases, *crashAfter, *prefetch, *goldenDir, bearer, *maxBackoff)
	case "ctl":
		runControlPlane(*addr, *addrFile, *journal, *tenantKeys, *leaseTTL, *maxRetries, *defaultQuota, *maxQueued, *compactBytes, *pprofOn)
	case "submit":
		runSubmit(*join, bearer, spec, *priority, *quota)
	case "watch":
		runWatch(*join, bearer, *campaignID, *out)
	case "cancel":
		runCancel(*join, bearer, *campaignID)
	case "list":
		runList(*join, bearer)
	case "token":
		runToken(*tenantKeys, *tenant)
	case "solo":
		report, pilot, err := campaign.SoloReport(spec, nil)
		if err != nil {
			log.Fatal(err)
		}
		writeStrata(*strataOut, spec, pilot, report)
		emit(report, *out)
	default:
		fmt.Fprintf(os.Stderr, "unknown role %q\n", *role)
		flag.Usage()
		os.Exit(2)
	}
}

func runCoordinator(spec campaign.Spec, addr, addrFile, checkpoint string,
	leaseTTL time.Duration, maxRetries int, linger time.Duration, pprofOn bool, out, strataOut string) {
	co, err := campaign.NewCoordinator(campaign.Config{
		Spec:           spec,
		CheckpointPath: checkpoint,
		LeaseTTL:       leaseTTL,
		MaxRetries:     maxRetries,
		Pprof:          pprofOn,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	sp := co.Spec()
	log.Printf("serving %s/%s n=%d as %d shards on %s (resumed %d shards from checkpoint)",
		sp.Net, sp.DType, sp.N, sp.Shards, ln.Addr(), co.Resumed())

	srv := &http.Server{Handler: co.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	// Done only closes on success; surface a failed campaign (a shard out
	// of retries) by polling the error state.
	for {
		select {
		case <-co.Done():
			report, err := co.FinalReport()
			if err != nil {
				log.Fatal(err)
			}
			if linger > 0 {
				time.Sleep(linger)
			}
			srv.Shutdown(context.Background())
			co.Close()
			writeStrata(strataOut, co.Spec(), co.PilotStrata(), report)
			emit(report, out)
			return
		case <-time.After(250 * time.Millisecond):
			if err := co.Err(); err != nil {
				log.Fatal(err)
			}
		}
	}
}

func runWorker(join string, procs, maxLeases, crashAfter, prefetch int, goldenDir, token string, maxBackoff time.Duration) {
	if join == "" {
		log.Fatal("worker needs -join URL")
	}
	join = strings.TrimRight(join, "/")
	w := &campaign.Worker{
		Base:       join,
		Name:       fmt.Sprintf("pid%d", os.Getpid()),
		Procs:      procs,
		MaxLeases:  maxLeases,
		Prefetch:   prefetch,
		Token:      token,
		MaxBackoff: maxBackoff,
	}
	if goldenDir != "" {
		w.Goldens = campaign.NewGoldenCache()
		w.Goldens.Persist(goldenDir)
	}
	if crashAfter > 0 {
		w.MaxLeases = crashAfter
	}
	// Graceful drain: first SIGTERM/SIGINT stops taking new leases while
	// in-flight shards finish and post their reports; a second signal
	// kills the process the ordinary way.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sigc
		log.Printf("draining: finishing in-flight shards, taking no new leases")
		w.Drain()
		signal.Stop(sigc)
	}()
	if err := w.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	if w.Draining() {
		log.Printf("drained")
	}
	if crashAfter > 0 {
		// Simulate a worker dying mid-shard: grab one more lease, never
		// heartbeat or report, and exit the way SIGKILL would. The
		// coordinator must expire the lease and hand the shard out again.
		resp, err := http.Post(join+"/v1/lease", "application/json", strings.NewReader("{}"))
		if err == nil {
			resp.Body.Close()
		}
		os.Exit(137)
	}
}

// runControlPlane serves the multi-tenant control plane until SIGTERM.
func runControlPlane(addr, addrFile, journal, tenantKeys string,
	leaseTTL time.Duration, maxRetries, defaultQuota, maxQueued int,
	compactBytes int64, pprofOn bool) {
	cfg := controlplane.Config{
		JournalPath:        journal,
		LeaseTTL:           leaseTTL,
		MaxRetries:         maxRetries,
		DefaultQuota:       defaultQuota,
		MaxQueuedPerTenant: maxQueued,
		CompactBytes:       compactBytes,
		Pprof:              pprofOn,
	}
	if tenantKeys != "" {
		auth, err := controlplane.LoadKeyFile(tenantKeys)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Auth = auth
		log.Printf("authenticating tenants %s", strings.Join(auth.Tenants(), ", "))
		if !auth.Has(controlplane.FleetTenant) {
			log.Printf("warning: key file has no %q entry — workers cannot authenticate; add a '%s:secret' line and mint its token with -role token -tenant %s",
				controlplane.FleetTenant, controlplane.FleetTenant, controlplane.FleetTenant)
		}
	}
	p, err := controlplane.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("control plane on %s (%d campaigns active after journal replay)", ln.Addr(), p.Active())

	srv := &http.Server{Handler: p.Handler()}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	<-sigc
	log.Printf("shutting down")
	srv.Shutdown(context.Background())
	p.Close()
}

// resolveToken picks the bearer token: -token wins, else -token-file.
func resolveToken(token, tokenFile string) string {
	if token != "" {
		return token
	}
	if tokenFile == "" {
		return ""
	}
	data, err := os.ReadFile(tokenFile)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimSpace(string(data))
}

// ctlRequest performs one authenticated control-plane request and fails
// hard on any non-2xx status.
func ctlRequest(method, url, token string, body io.Reader) *http.Response {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		log.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		log.Fatalf("%s %s: %s: %s", method, url, resp.Status, strings.TrimSpace(string(msg)))
	}
	return resp
}

func ctlBase(join string) string {
	if join == "" {
		log.Fatal("this verb needs -join URL")
	}
	return strings.TrimRight(join, "/")
}

// runSubmit queues one campaign and prints its assigned ID on stdout.
func runSubmit(join, token string, spec campaign.Spec, priority, quota int) {
	body, err := json.Marshal(controlplane.SubmitRequest{Spec: spec, Priority: priority, Quota: quota})
	if err != nil {
		log.Fatal(err)
	}
	resp := ctlRequest("POST", ctlBase(join)+"/v1/campaigns", token, strings.NewReader(string(body)))
	defer resp.Body.Close()
	var st controlplane.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	log.Printf("submitted %s (%s/%s n=%d priority=%d quota=%d)",
		st.ID, spec.Net, spec.DType, spec.N, st.Priority, st.Quota)
	fmt.Println(st.ID)
}

// runWatch follows one campaign's NDJSON stream until it reaches a
// terminal state, then (when -out is set and the campaign completed)
// fetches the final merged report — bytes identical to a solo -out file.
func runWatch(join, token, id, out string) {
	if id == "" {
		log.Fatal("watch needs -campaign ID")
	}
	base := ctlBase(join)
	resp := ctlRequest("GET", base+"/v1/campaigns/"+id+"/stream", token, nil)
	var last controlplane.Status
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		fmt.Println(sc.Text())
		json.Unmarshal(sc.Bytes(), &last)
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
	switch last.State {
	case controlplane.StateDone:
	case controlplane.StateFailed, controlplane.StateCancelled:
		log.Fatalf("campaign %s %s", id, last.State)
	default:
		log.Fatalf("stream for %s ended while still %s", id, last.State)
	}
	if out == "" {
		return
	}
	rr := ctlRequest("GET", base+"/v1/campaigns/"+id+"/report", token, nil)
	defer rr.Body.Close()
	data, err := io.ReadAll(rr.Body)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", out)
}

// runCancel cancels one campaign.
func runCancel(join, token, id string) {
	if id == "" {
		log.Fatal("cancel needs -campaign ID")
	}
	resp := ctlRequest("POST", ctlBase(join)+"/v1/campaigns/"+id+"/cancel", token, nil)
	resp.Body.Close()
	log.Printf("cancelled %s", id)
}

// runList prints every queued campaign's status, one JSON line each.
func runList(join, token string) {
	resp := ctlRequest("GET", ctlBase(join)+"/v1/campaigns", token, nil)
	defer resp.Body.Close()
	var sts []controlplane.Status
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		log.Fatal(err)
	}
	for _, st := range sts {
		line, _ := json.Marshal(st)
		fmt.Println(string(line))
	}
}

// runToken mints a tenant's bearer token offline from the key file — the
// same derivation the control plane verifies against.
func runToken(tenantKeys, tenant string) {
	if tenantKeys == "" || tenant == "" {
		log.Fatal("token needs -tenant-keys FILE and -tenant NAME")
	}
	auth, err := controlplane.LoadKeyFile(tenantKeys)
	if err != nil {
		log.Fatal(err)
	}
	tok, err := auth.Token(tenant)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tok)
}

// writeStrata persists a stratified campaign's strata artifact for later
// -prior reuse: the merged pilot when one ran (so a reseeded campaign
// reconstructs this campaign's exact allocation table), plus the final
// per-stratum totals.
func writeStrata(path string, spec campaign.Spec, pilot *engine.StrataSummary, report *campaign.Report) {
	if path == "" {
		return
	}
	if err := spec.Normalize(); err != nil {
		log.Fatal(err)
	}
	if !spec.Stratified() {
		log.Fatal("-strata-out needs a stratified campaign")
	}
	a := &engine.StrataArtifact{
		Surface: spec.Surface, Net: spec.Net, DType: spec.DType,
		N: spec.N, PilotN: spec.PilotN,
		Pilot: pilot, Total: report.Strata(),
	}
	if spec.BufferSurface() {
		a.Buffer = spec.Buffer
	}
	if err := engine.WriteStrataArtifact(path, a); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote strata artifact %s", path)
}

// emit writes the report JSON (when requested) and prints the summary the
// interactive roles share. The JSON body is the inner surface report —
// exactly what a solo faultinj/eyeriss/systolic run of the same spec
// serializes to, so distributed and solo outputs byte-compare.
func emit(report *campaign.Report, out string) {
	if out != "" {
		var inner any = report.Datapath
		if report.Buffer != nil {
			inner = report.Buffer
		}
		if report.Systolic != nil {
			inner = report.Systolic
		}
		data, err := json.MarshalIndent(inner, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			log.Fatal(err)
		}
	}
	c := report.Counts()
	masked := report.Masked()
	fmt.Printf("injections %d  masked %d (%.1f%%)\n",
		c.Trials, masked, 100*float64(masked)/float64(max(c.Trials, 1)))
	for _, k := range sdc.Kinds {
		if report.Strata() != nil {
			// Stratified campaigns over-sample high-variance strata; the
			// weighted estimate undoes that, the raw proportion would not.
			p, ci := report.SDCEstimate(k)
			fmt.Printf("%-8s %.2f%% ±%.2f%%\n", k, 100*p, 100*ci)
			continue
		}
		p := stats.Proportion{Successes: c.Hits[k], Trials: c.DefinedTrials[k]}
		fmt.Printf("%-8s %s\n", k, p)
	}
}
