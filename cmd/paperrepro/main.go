// Command paperrepro regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) and prints them
// in order.
//
// Usage:
//
//	paperrepro -scale quick            # CI-sized campaigns
//	paperrepro -scale paper            # 3000 injections per configuration
//	paperrepro -exp fig3,table8        # a subset of experiments
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/numeric"
)

// experiment binds an id to its runner.
type experiment struct {
	id, title string
	run       func(core.Config)
}

var experiments = []experiment{
	{"fig3", "Figure 3: SDC probability x network x data type (datapath faults)", runFig3},
	{"fig4", "Figure 4: SDC probability per bit position", runFig4},
	{"fig5", "Figure 5: ACT values before/after errors (SDC vs benign)", runFig5},
	{"table4", "Table 4: per-layer activation value ranges", runTable4},
	{"fig6", "Figure 6: SDC probability per layer (FLOAT16)", runFig6},
	{"fig7", "Figure 7: Euclidean distance per layer after layer-1 faults (DOUBLE)", runFig7},
	{"table5", "Table 5: bit-wise SDC across layers (AlexNet, FLOAT16)", runTable5},
	{"table6", "Table 6: datapath FIT rate per network and data type", runTable6},
	{"table7", "Table 7: Eyeriss microarchitecture 65nm -> 16nm", runTable7},
	{"table8", "Table 8: Eyeriss buffer SDC probability and FIT (16b_rb10)", runTable8},
	{"fig8", "Figure 8: symptom-based detector precision and recall", runFig8},
	{"table9", "Table 9: hardened latch design space", runTable9},
	{"fig9", "Figure 9: selective latch hardening exploration (AlexNet)", runFig9},
	{"sedfit", "SED FIT reduction on Eyeriss (Section 6.2)", runSEDFIT},
	{"budget", "ISO 26262 budget comparison (Section 5.2/6.1)", runBudget},
	{"ablation", "Ablation: LRN masking effect (extension of Section 5.1.4)", runAblation},
	{"formats", "Just-enough format recommendation (Section 6.1 implication 1)", runFormats},
	{"reuse", "Analytic per-layer reuse factors (Table 1/8 background)", runReuse},
	{"schedule", "Row-stationary schedule and buffer traffic (dataflow model)", runSchedule},
	{"table8rs", "Table 8 with cycle-accurate residency weights (ablation)", runTable8Residency},
	{"mixed", "Reduced-precision storage protocol (Section 6.1 future work)", runMixed},
	{"pearray", "Cycle-level PE-array vs abstract fault-model cross-check", runPEArray},
	{"latches", "SDC probability per ALU latch class (datapath breakdown)", runLatches},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperrepro: ")

	scale := flag.String("scale", "quick", "quick or paper")
	expList := flag.String("exp", "all", "comma-separated experiment ids, or all")
	n := flag.Int("n", 0, "override injections per configuration")
	seed := flag.Int64("seed", 1, "campaign seed")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output); empty = calibrated synthetic weights")
	flag.StringVar(&csvDir, "csv", "", "also write plotting-ready CSV files for the supported experiments into this directory")
	flag.Parse()
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	var cfg core.Config
	switch *scale {
	case "quick":
		cfg = core.Config{Injections: 300, Inputs: 2}
	case "paper":
		cfg = core.PaperScale
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.WeightsDir = *weightsDir
	if *n > 0 {
		cfg.Injections = *n
	}

	want := map[string]bool{}
	if *expList != "all" {
		for _, id := range strings.Split(*expList, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !knownExperiment(id) {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, knownIDs())
				os.Exit(2)
			}
		}
	}

	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s ====\n", e.title)
		start := time.Now()
		e.run(cfg)
		fmt.Printf("(%s, %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
}

func knownExperiment(id string) bool {
	for _, e := range experiments {
		if e.id == id {
			return true
		}
	}
	return false
}

func knownIDs() string {
	ids := make([]string, len(experiments))
	for i, e := range experiments {
		ids[i] = e.id
	}
	return strings.Join(ids, ", ")
}

// csvDir, when non-empty, receives plotting-ready CSV files.
var csvDir string

// writeCSVFile stores a CSV document for one experiment.
func writeCSVFile(name, doc string) {
	if csvDir == "" {
		return
	}
	path := filepath.Join(csvDir, name+".csv")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("(csv -> %s)\n", path)
}

func runFig3(cfg core.Config) {
	res := core.Fig3(cfg, models.Names, core.AllDataTypes)
	fmt.Print(res.Format())
	writeCSVFile("fig3", res.CSV())
}

func runFig4(cfg core.Config) {
	// The paper shows NiN with the FP types and CaffeNet with the FxP
	// types.
	var docs []string
	for _, c := range []struct {
		net string
		dt  numeric.Type
	}{
		{"NiN", numeric.Float}, {"NiN", numeric.Float16},
		{"CaffeNet", numeric.Fx32RB26}, {"CaffeNet", numeric.Fx32RB10},
	} {
		res := core.Fig4(cfg, c.net, c.dt)
		fmt.Print(res.Format())
		docs = append(docs, res.CSV())
	}
	writeCSVFile("fig4", mergeCSV(docs))
}

// mergeCSV concatenates same-schema CSV documents, keeping one header.
func mergeCSV(docs []string) string {
	if len(docs) == 0 {
		return ""
	}
	out := docs[0]
	for _, d := range docs[1:] {
		if i := strings.IndexByte(d, '\n'); i >= 0 {
			out += d[i+1:]
		}
	}
	return out
}

func runFig5(cfg core.Config) {
	res := core.Fig5(cfg, "AlexNet", numeric.Float16)
	fmt.Print(res.Format())
	writeCSVFile("fig5", res.CSV())
}

func runTable4(cfg core.Config) {
	fmt.Print(core.FormatTable4(core.Table4(cfg, models.Names, numeric.Double)))
}

func runFig6(cfg core.Config) {
	var docs []string
	for _, name := range models.Names {
		res := core.Fig6(cfg, name, numeric.Float16)
		fmt.Print(res.Format())
		docs = append(docs, res.CSV())
	}
	writeCSVFile("fig6", mergeCSV(docs))
}

func runFig7(cfg core.Config) {
	n := cfg
	if n.Injections > 200 {
		n.Injections = 200 // serial experiment; distances converge quickly
	}
	var docs []string
	for _, name := range models.Names {
		res := core.Fig7(n, name, numeric.Double)
		fmt.Print(res.Format())
		docs = append(docs, res.CSV())
	}
	writeCSVFile("fig7", mergeCSV(docs))
}

func runTable5(cfg core.Config) {
	fmt.Print(core.Table5(cfg, "AlexNet", numeric.Float16).Format())
}

func runTable6(cfg core.Config) {
	cells := core.Table6(cfg, models.Names, core.AllDataTypes)
	fmt.Print(core.FormatTable6(cells))
	writeCSVFile("table6", core.Table6CSV(cells))
}

func runTable7(core.Config) {
	fmt.Print(core.FormatTable7(core.Table7()))
}

func runTable8(cfg core.Config) {
	cells := core.Table8(cfg, models.Names)
	fmt.Print(core.FormatTable8(cells))
	writeCSVFile("table8", core.Table8CSV(cells))
}

func runFig8(cfg core.Config) {
	rows := core.Fig8(cfg, core.SEDNetworks, core.SEDDataTypes)
	fmt.Print(core.FormatFig8(rows))
	writeCSVFile("fig8", core.Fig8CSV(rows))
}

func runTable9(core.Config) {
	fmt.Print(core.FormatTable9(core.Table9()))
}

func runFig9(cfg core.Config) {
	a := core.Fig9(cfg, "AlexNet", numeric.Float16)
	b := core.Fig9(cfg, "AlexNet", numeric.Fx16RB10)
	fmt.Print(a.Format())
	fmt.Print(b.Format())
	writeCSVFile("fig9", mergeCSV([]string{a.CSV(), b.CSV()}))
}

func runSEDFIT(cfg core.Config) {
	var rows []core.SEDFITRow
	for _, dt := range []numeric.Type{numeric.Float, numeric.Float16} {
		rows = append(rows, core.SEDFIT(cfg, "AlexNet", dt))
	}
	fmt.Print(core.FormatSEDFIT(rows))
}

func runBudget(cfg core.Config) {
	cells := core.Table8(cfg, models.Names)
	dp := core.Table6(cfg, models.Names, []numeric.Type{numeric.Fx16RB10})
	for _, c := range dp {
		fmt.Print(core.FormatBudgetCheck(c.Network, core.EyerissTotalFIT(cells, c.FIT, c.Network)))
	}
}

func runAblation(cfg core.Config) {
	for _, name := range []string{"AlexNet", "CaffeNet"} {
		fmt.Print(core.AblateLRN(cfg, name, numeric.Float16).Format())
	}
}

func runFormats(cfg core.Config) {
	fmt.Print(core.FormatRecommendations(cfg, models.Names))
}

func runReuse(core.Config) {
	fmt.Print(core.ReuseReport(models.Names))
}

func runSchedule(core.Config) {
	fmt.Print(core.ScheduleReport(models.Names))
}

func runTable8Residency(cfg core.Config) {
	fmt.Print(core.FormatTable8(core.Table8Residency(cfg, models.Names)))
}

func runMixed(cfg core.Config) {
	var rows []core.MixedPrecisionRow
	for _, st := range []numeric.Type{numeric.Float, numeric.Float16, numeric.Fx16RB10} {
		rows = append(rows, core.MixedPrecision(cfg, "AlexNet", numeric.Float, st))
	}
	fmt.Print(core.FormatMixedPrecision(rows))
}

func runPEArray(cfg core.Config) {
	n := cfg
	if n.Injections > 200 {
		n.Injections = 200
	}
	for _, name := range models.Names {
		fmt.Print(core.ValidatePEArray(n, name).Format())
	}
}

func runLatches(cfg core.Config) {
	var rows []core.LatchRow
	for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
		rows = append(rows, core.LatchBreakdown(cfg, "AlexNet", dt)...)
	}
	fmt.Print(core.FormatLatchBreakdown(rows))
}
