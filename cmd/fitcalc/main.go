// Command fitcalc computes the paper's FIT-rate tables: datapath FIT per
// network and data type (Table 6), the Eyeriss parameter scaling (Table 7),
// per-buffer FIT (Table 8) and the ISO 26262 budget comparison.
//
// Usage:
//
//	fitcalc -exp table7
//	fitcalc -exp table6 -n 3000
//	fitcalc -exp table8 -n 3000 -nets ConvNet,AlexNet
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/numeric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fitcalc: ")

	exp := flag.String("exp", "table7", "table6, table7, table8 or budget")
	n := flag.Int("n", 1000, "injections per configuration")
	inputs := flag.Int("inputs", 4, "number of distinct input images")
	seed := flag.Int64("seed", 1, "campaign seed")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output); empty = calibrated synthetic weights")
	nets := flag.String("nets", strings.Join(models.Names, ","), "comma-separated network list")
	flag.Parse()

	cfg := core.Config{Injections: *n, Inputs: *inputs, Seed: *seed, WeightsDir: *weightsDir}
	networks := strings.Split(*nets, ",")

	switch *exp {
	case "table7":
		fmt.Print(core.FormatTable7(core.Table7()))
	case "table6":
		fmt.Print(core.FormatTable6(core.Table6(cfg, networks, core.AllDataTypes)))
	case "table8":
		fmt.Print(core.FormatTable8(core.Table8(cfg, networks)))
	case "budget":
		// Overall Eyeriss FIT per network (16b_rb10 datapath + buffers)
		// against the ISO 26262 budget.
		cells := core.Table8(cfg, networks)
		dp := core.Table6(cfg, networks, []numeric.Type{numeric.Fx16RB10})
		for _, c := range dp {
			total := core.EyerissTotalFIT(cells, c.FIT, c.Network)
			fmt.Print(core.FormatBudgetCheck(c.Network, total))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
