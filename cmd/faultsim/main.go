// Command faultsim runs datapath fault-injection campaigns against one of
// the paper's networks and prints the SDC breakdown, optionally per bit
// position or per layer.
//
// Usage:
//
//	faultsim -net AlexNet -dtype FLOAT16 -n 3000
//	faultsim -net NiN -dtype FLOAT -n 3000 -mode perbit
//	faultsim -net CaffeNet -dtype 32b_rb10 -n 3000 -mode perlayer
//
// To shard a campaign across processes or machines (with checkpoint/
// resume and live streaming aggregates), see cmd/faultserve.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/numeric"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultsim: ")

	netName := flag.String("net", "AlexNet", "network: ConvNet, AlexNet, CaffeNet or NiN")
	dtypeName := flag.String("dtype", "FLOAT16", "data type: DOUBLE, FLOAT, FLOAT16, 32b_rb26, 32b_rb10 or 16b_rb10")
	n := flag.Int("n", 3000, "number of fault injections")
	inputs := flag.Int("inputs", 4, "number of distinct input images")
	seed := flag.Int64("seed", 1, "campaign seed")
	weightsDir := flag.String("weights", "", "directory of pre-trained weights (cmd/pretrain output); empty = calibrated synthetic weights")
	mode := flag.String("mode", "overall", "overall, perbit or perlayer")
	flag.Parse()

	dt, err := numeric.ParseType(*dtypeName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{Injections: *n, Inputs: *inputs, Seed: *seed, WeightsDir: *weightsDir}

	switch *mode {
	case "overall":
		res := core.Fig3(cfg, []string{*netName}, []numeric.Type{dt})
		fmt.Print(res.Format())
	case "perbit":
		fmt.Print(core.Fig4(cfg, *netName, dt).Format())
	case "perlayer":
		fmt.Print(core.Fig6(cfg, *netName, dt).Format())
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		flag.Usage()
		os.Exit(2)
	}
}
