// Package repro's benchmarks regenerate every table and figure of the
// paper's evaluation section at a CI-friendly scale (see DESIGN.md §4 for
// the experiment index; run cmd/paperrepro -scale paper for the full
// 3000-injection campaigns). Each benchmark reports the experiment's
// headline statistic as a custom metric so the shape results are visible
// directly in the bench output.
package repro

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinj"
	"repro/internal/harden"
	"repro/internal/layers"
	"repro/internal/models"
	"repro/internal/numeric"
	"repro/internal/pearray"
	"repro/internal/rowstat"
	"repro/internal/sdc"
	"repro/internal/tensor"
	"repro/internal/train"
)

// benchCfg is the per-iteration campaign scale. Seeds vary per iteration
// so repeated iterations measure fresh injections.
func benchCfg(i int) core.Config {
	return core.Config{Injections: 120, Inputs: 1, Seed: int64(i) + 1}
}

// ---- Figure 3: SDC probability x network x data type ----

func BenchmarkFig3_ConvNet(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		res := core.Fig3(benchCfg(i), []string{"ConvNet"}, []numeric.Type{numeric.Fx32RB10, numeric.Fx32RB26})
		p = res.Rows[0].Prob[sdc.SDC1]
	}
	b.ReportMetric(p*100, "SDC1-rb10-%")
}

func BenchmarkFig3_ImageNetNets(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		res := core.Fig3(benchCfg(i), []string{"AlexNet"}, []numeric.Type{numeric.Float16})
		p = res.Rows[0].Prob[sdc.SDC1]
	}
	b.ReportMetric(p*100, "SDC1-fp16-%")
}

// ---- Figure 4: per-bit SDC probability ----

func BenchmarkFig4_NiN_FLOAT16(b *testing.B) {
	var hi float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 160
		res := core.Fig4(cfg, "NiN", numeric.Float16)
		hi = res.Prob[14]
	}
	b.ReportMetric(hi*100, "SDC1-bit14-%")
}

func BenchmarkFig4_CaffeNet_32bRB10(b *testing.B) {
	var hi float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 160
		res := core.Fig4(cfg, "CaffeNet", numeric.Fx32RB10)
		hi = res.Prob[30]
	}
	b.ReportMetric(hi*100, "SDC1-bit30-%")
}

// ---- Figure 5: value deviations of SDC vs benign faults ----

func BenchmarkFig5(b *testing.B) {
	var s float64
	for i := 0; i < b.N; i++ {
		res := core.Fig5(benchCfg(i), "AlexNet", numeric.Float16)
		s, _ = res.LargeDeviationShare(64)
	}
	b.ReportMetric(s*100, "SDC-large-dev-%")
}

// ---- Table 4: per-layer value ranges ----

func BenchmarkTable4(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		rows := core.Table4(core.Config{Inputs: 2, Seed: int64(i) + 1}, models.Names, numeric.Double)
		rs := rows[1].Ranges // AlexNet
		last = rs[len(rs)-1].Max
	}
	b.ReportMetric(last, "alexnet-L8-max")
}

// ---- Figure 6: per-layer SDC probability ----

func BenchmarkFig6_AlexNet(b *testing.B) {
	var fc float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 160
		res := core.Fig6(cfg, "AlexNet", numeric.Float16)
		fc = res.Prob[len(res.Prob)-1]
	}
	b.ReportMetric(fc*100, "SDC1-fc8-%")
}

func BenchmarkFig6_ConvNet(b *testing.B) {
	var fc float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 160
		res := core.Fig6(cfg, "ConvNet", numeric.Float16)
		fc = res.Prob[len(res.Prob)-1]
	}
	b.ReportMetric(fc*100, "SDC1-fc5-%")
}

// ---- Figure 7: error distance per layer (LRN masking) ----

func BenchmarkFig7(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 24
		alex := core.Fig7(cfg, "AlexNet", numeric.Double)
		if alex.Dist[0] > 0 {
			ratio = alex.Dist[1] / alex.Dist[0]
		}
	}
	b.ReportMetric(ratio, "alexnet-L2/L1-dist")
}

// ---- Table 5: bit-wise spread across layers ----

func BenchmarkTable5(b *testing.B) {
	var l1 float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 160
		res := core.Table5(cfg, "AlexNet", numeric.Float16)
		l1 = res.Spread[0]
	}
	b.ReportMetric(l1*100, "spread-L1-%")
}

// ---- Table 6: datapath FIT rates ----

func BenchmarkTable6(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		cells := core.Table6(benchCfg(i), []string{"ConvNet"}, []numeric.Type{numeric.Fx32RB10})
		f = cells[0].FIT
	}
	b.ReportMetric(f, "convnet-rb10-FIT")
}

// ---- Table 7: parameter scaling (pure computation) ----

func BenchmarkTable7(b *testing.B) {
	var pes int
	for i := 0; i < b.N; i++ {
		rows := core.Table7()
		pes = rows[1].NumPEs
	}
	b.ReportMetric(float64(pes), "PEs-16nm")
}

// ---- Table 8: Eyeriss buffer SDC and FIT ----

func BenchmarkTable8_ConvNet(b *testing.B) {
	var gb float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 60
		cells := core.Table8(cfg, []string{"ConvNet"})
		gb = cells[0].FIT
	}
	b.ReportMetric(gb, "globalbuf-FIT")
}

func BenchmarkTable8_AlexNet(b *testing.B) {
	var fs float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 40
		cells := core.Table8(cfg, []string{"AlexNet"})
		fs = cells[1].FIT
	}
	b.ReportMetric(fs, "filtersram-FIT")
}

// ---- Figure 8: SED precision and recall ----

func BenchmarkFig8(b *testing.B) {
	var recall float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 80
		rows := core.Fig8(cfg, []string{"AlexNet"}, []numeric.Type{numeric.Float})
		recall = rows[0].Recall
	}
	b.ReportMetric(recall*100, "recall-%")
}

// ---- Figure 9 / Table 9: selective latch hardening ----

func BenchmarkFig9a(b *testing.B) {
	var beta float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 320
		res := core.Fig9(cfg, "AlexNet", numeric.Float16)
		beta = res.Beta
	}
	b.ReportMetric(beta, "beta")
}

func BenchmarkFig9bc(b *testing.B) {
	var multi100 float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 320
		res := core.Fig9(cfg, "AlexNet", numeric.Fx16RB10)
		ov := res.Overhead["Multi"]
		multi100 = ov[len(ov)-1]
		if math.IsNaN(multi100) {
			multi100 = -1
		}
	}
	b.ReportMetric(multi100*100, "multi-100x-overhead-%")
}

// ---- Section 6.2: SED FIT reduction ----

func BenchmarkSEDFIT(b *testing.B) {
	var after float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 60
		row := core.SEDFIT(cfg, "AlexNet", numeric.Float)
		after = row.FITAfter
	}
	b.ReportMetric(after, "FIT-after-SED")
}

// ---- Microbenchmarks: the simulator's hot paths ----

func BenchmarkForwardPass(b *testing.B) {
	for _, name := range models.Names {
		for _, dt := range []numeric.Type{numeric.Double, numeric.Float16, numeric.Fx16RB10} {
			b.Run(name+"/"+dt.String(), func(b *testing.B) {
				net := models.Build(name)
				in := models.InputFor(name, 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					net.Forward(dt, in)
				}
			})
		}
	}
}

// BenchmarkCampaignThroughput measures end-to-end injections per second of
// the incremental fault-propagation engine against the dense per-layer
// re-execution baseline (Options.Dense). The golden pass runs outside the
// timed region; each iteration is a fresh block of injections.
// cmd/benchtrack runs the same comparison standalone and records it to
// BENCH_1.json.
func BenchmarkCampaignThroughput(b *testing.B) {
	const perIter = 256
	for _, name := range []string{"AlexNet", "ConvNet"} {
		for _, dt := range []numeric.Type{numeric.Float16, numeric.Fx32RB10} {
			for _, mode := range []string{"incremental", "dense"} {
				b.Run(name+"/"+dt.String()+"/"+mode, func(b *testing.B) {
					net := models.Build(name)
					in := models.InputFor(name, 0)
					c := faultinj.New(net, dt, []*tensor.Tensor{in})
					c.Golden(0)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						c.Run(faultinj.Options{N: perIter, Seed: int64(i) + 1, Dense: mode == "dense"})
					}
					b.ReportMetric(float64(b.N*perIter)/b.Elapsed().Seconds(), "inj/s")
				})
			}
		}
	}
}

func BenchmarkMACThroughput(b *testing.B) {
	for _, dt := range core.AllDataTypes {
		b.Run(dt.String(), func(b *testing.B) {
			acc := 0.0
			for i := 0; i < b.N; i++ {
				acc = dt.MAC(acc, 0.5, 0.25)
				if acc > 100 {
					acc = 0
				}
			}
			_ = acc
		})
	}
}

func BenchmarkHardenMultiPlan(b *testing.B) {
	s := make(harden.Sensitivity, 16)
	s[14], s[13], s[12], s[11] = 0.06, 0.03, 0.01, 0.002
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := harden.MultiPlan(s, 100); !ok {
			b.Fatal("unreachable target")
		}
	}
}

// ---- Extension experiments ----

func BenchmarkAblationLRN(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 100
		res := core.AblateLRN(cfg, "AlexNet", numeric.Float16)
		delta = res.AblatedSDC - res.BaselineSDC
	}
	b.ReportMetric(delta*100, "noLRN-minus-baseline-%")
}

func BenchmarkMixedPrecisionStorage(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 80
		row := core.MixedPrecision(cfg, "AlexNet", numeric.Float, numeric.Float16)
		f = row.FIT
	}
	b.ReportMetric(f, "fp16-storage-GB-FIT")
}

func BenchmarkRowStationarySchedule(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		s := rowstat.New(models.Build("AlexNet"), rowstat.Eyeriss16nm)
		eff = s.Efficiency()
	}
	b.ReportMetric(eff*100, "array-efficiency-%")
}

func BenchmarkTable8Residency(b *testing.B) {
	var gb float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg(i)
		cfg.Injections = 40
		cells := core.Table8Residency(cfg, []string{"ConvNet"})
		gb = cells[0].FIT
	}
	b.ReportMetric(gb, "globalbuf-FIT")
}

func BenchmarkTrainingStep(b *testing.B) {
	net := models.Build("ConvNet")
	samples := models.TrainingSamplesCapped("ConvNet", 8, 0)
	tr := train.New(net, 0.01, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step(samples)
	}
}

func BenchmarkPEArraySim(b *testing.B) {
	conv := models.Build("ConvNet").Layers[0].(*layers.ConvLayer)
	in := models.InputFor("ConvNet", 0)
	sim := pearray.New(conv, numeric.Fx16RB10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(in, nil)
	}
}
